package algorithms

import (
	"fmt"
	"time"

	"kimbap/internal/comm"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// Deterministic Louvain community detection (Blondel et al., Table 2:
// adjacent + trans-vertex). Each level runs synchronous local-moving
// rounds: every node evaluates the modularity gain of joining each
// neighbor's community — reading the neighbor's community (adjacent) and
// the community totals stored on representative nodes (trans-vertex) — and
// the level ends when modularity stops improving. Communities are then
// contracted into supernodes and the process repeats on the coarse graph.
//
// As in the paper, a cluster's aggregate property (its total degree
// weight) is stored in its representative node's property, so reading and
// reducing it are trans-vertex operations on dynamically computed node
// IDs.
//
// Substitution note: refinement — the dominant cost and the part whose
// reductions the §6.4 ablation measures — is fully distributed; graph
// contraction between levels is performed centrally by the driver, which
// also builds a fresh partition per level (the paper excludes partitioning
// time from all measurements, and so do the benchmarks here).

// CDOptions tune the community-detection algorithms.
type CDOptions struct {
	// MaxLevels caps coarsening levels (default 10).
	MaxLevels int
	// MaxIters caps local-moving rounds per level (default 32).
	MaxIters int
	// MinDelta is the modularity-gain threshold that ends a level
	// (default 1e-6).
	MinDelta float64
	// EarlyTermination enables Vite's heuristic: a node that stayed in
	// its community for 4 consecutive rounds is skipped with 75%
	// (deterministic pseudo-random) probability.
	EarlyTermination bool
	// Gamma is Leiden's resolution parameter: higher values demand
	// stronger connectivity before a node merges into a subcommunity,
	// yielding finer refinement (default 1.0; unused by Louvain).
	Gamma float64
}

func (o CDOptions) withDefaults() CDOptions {
	if o.MaxLevels == 0 {
		o.MaxLevels = 10
	}
	if o.MaxIters == 0 {
		o.MaxIters = 32
	}
	if o.MinDelta == 0 {
		o.MinDelta = 1e-6
	}
	if o.Gamma == 0 {
		o.Gamma = 1.0
	}
	return o
}

// CDResult is the outcome of Louvain or Leiden.
type CDResult struct {
	// Assignment maps every original node to its final community label
	// (a representative node ID of the final coarse level).
	Assignment []graph.NodeID
	// Modularity of the final assignment on the original graph.
	Modularity float64
	Levels     int
	Rounds     int // total refinement rounds across levels
	// Compute and Comm sum the per-host phase timers across all levels;
	// Request/Reduce/Broadcast split Comm by sync phase.
	Compute, Comm              time.Duration
	Request, Reduce, Broadcast time.Duration
}

// Louvain runs the full multi-level algorithm, creating one simulated
// cluster per level (partitioning time is excluded from the timers, as in
// the paper). LV and LD require an edge-cut partition (Vite supports only
// edge-cuts); the policy is forced to OEC.
func Louvain(g *graph.Graph, ccfg runtime.Config, acfg Config, opts CDOptions) (CDResult, error) {
	return multilevel(g, ccfg, acfg, opts.withDefaults(), false)
}

func multilevel(g *graph.Graph, ccfg runtime.Config, acfg Config,
	opts CDOptions, leiden bool) (CDResult, error) {

	ccfg.Policy = partition.OEC
	// Community labels are used as node addresses throughout the refinement
	// and contraction (labels index the coarse graph), so the multi-level
	// driver keeps every level's cluster in natural ID order — vertex
	// reordering (DESIGN.md §14) applies to the flat SPMD algorithms only.
	ccfg.Reorder = ""
	var res CDResult
	// proj[i] = current coarse-level node holding original node i.
	proj := make([]graph.NodeID, g.NumNodes())
	for i := range proj {
		proj[i] = graph.NodeID(i)
	}
	// final[i] = community label of original node i after the latest level.
	final := make([]graph.NodeID, g.NumNodes())
	copy(final, proj)
	cur := g
	// initComm seeds each level's starting partition. Louvain always
	// starts levels from singletons; Leiden contracts on subcommunities
	// and starts the next level from the aggregated communities
	// (Traag et al.), which initComm carries across the contraction.
	var initComm []graph.NodeID

	for level := 0; level < opts.MaxLevels; level++ {
		cluster, err := runtime.NewCluster(cur, ccfg)
		if err != nil {
			return res, fmt.Errorf("louvain: level %d: %w", level, err)
		}
		// assignComm holds the level's community labels (the reported
		// clustering); assignSub the labels contraction groups by. For
		// Louvain they coincide; Leiden contracts on the finer
		// subcommunities while reporting communities (Traag et al.).
		assignComm := make([]graph.NodeID, cur.NumNodes())
		assignSub := assignComm
		if leiden {
			assignSub = make([]graph.NodeID, cur.NumNodes())
		}
		rounds := make([]int, ccfg.NumHosts)
		moved := make([]int64, ccfg.NumHosts)
		cluster.Run(func(h *runtime.Host) {
			r, m := refineLevel(h, acfg, opts, initComm, assignComm)
			rounds[h.Rank] = r
			moved[h.Rank] = m
			if leiden {
				leidenRefine(h, acfg, opts, assignComm, assignSub)
			}
		})
		for _, h := range cluster.Hosts() {
			res.Compute += h.Timers.Compute
			res.Comm += h.Timers.Comm()
			res.Request += h.Timers.Request
			res.Reduce += h.Timers.Reduce
			res.Broadcast += h.Timers.Broadcast
		}
		cluster.Close()
		res.Levels++
		res.Rounds += rounds[0]

		for i := range final {
			final[i] = assignComm[proj[i]]
		}
		if moved[0] == 0 && level > 0 {
			break // no node moved: converged
		}
		coarse, remap := contract(cur, assignSub)
		if leiden {
			initComm = make([]graph.NodeID, coarse.NumNodes())
			for n := 0; n < cur.NumNodes(); n++ {
				initComm[remap[assignSub[n]]] = remap[assignSub[assignComm[n]]]
			}
		}
		for i := range proj {
			proj[i] = remap[assignSub[proj[i]]]
		}
		if coarse.NumNodes() == cur.NumNodes() || coarse.NumNodes() <= 1 {
			break
		}
		cur = coarse
	}
	res.Assignment = final
	res.Modularity = graph.Modularity(g, final)
	return res, nil
}

// refineLevel runs the synchronous local-moving phase on one host (SPMD)
// and fills this host's master range of assign. initComm optionally seeds
// the starting partition (nil means singletons). Returns the number of
// rounds and the total nodes moved (global, identical on all hosts).
func refineLevel(h *runtime.Host, cfg Config, opts CDOptions,
	initComm, assign []graph.NodeID) (rounds int, totalMoved int64) {

	local := h.HP.Local

	// Total directed edge weight (2m) is a level constant.
	localWeight := 0.0
	for n := 0; n < local.NumNodes(); n++ {
		lo, hi := local.EdgeRange(graph.NodeID(n))
		for e := lo; e < hi; e++ {
			localWeight += local.Weight(e)
		}
	}
	twoM := comm.AllReduceFloat64(h.EP, localWeight)
	if twoM == 0 {
		lo, hi := h.HP.MasterRangeGlobal()
		for g := lo; g < hi; g++ {
			assign[g] = g
		}
		return 0, 0
	}

	// Weighted degree per node (global sums; local degrees are partial
	// only under vertex cuts, but the sum reduction is correct for any
	// policy).
	wdeg := cfg.newFloatMap(h, npm.SumFloat64())
	h.ParForNodes(func(_ int, n graph.NodeID) { wdeg.Set(h.HP.GlobalID(n), 0) })
	wdeg.InitSync()
	h.TimeCompute(func() {
		h.ParForNodes(func(tid int, n graph.NodeID) {
			sum := 0.0
			lo, hi := local.EdgeRange(n)
			for e := lo; e < hi; e++ {
				sum += local.Weight(e)
			}
			if sum != 0 {
				wdeg.Reduce(tid, h.HP.GlobalID(n), sum)
			}
		})
	})
	wdeg.ReduceSync()
	wdeg.PinMirrors()

	// Community of each node: the seed partition if given, else itself.
	// Only the node's owner writes it, so Overwrite is race free.
	cm := cfg.newNodeMap(h, npm.Overwrite[graph.NodeID]())
	if initComm == nil {
		initOwn(h, cm)
	} else {
		h.ParForNodes(func(_ int, n graph.NodeID) {
			gid := h.HP.GlobalID(n)
			cm.Set(gid, initComm[gid])
		})
		cm.InitSync()
	}
	cm.PinMirrors()

	// Vite early-termination state: consecutive rounds a master stayed put.
	var stable []uint8
	if opts.EarlyTermination {
		stable = make([]uint8, h.HP.NumMasters)
	}

	prevQ := -1.0
	for rounds = 0; rounds < opts.MaxIters; rounds++ {
		if cfg.requestActive() {
			requestLocalProxies(h, cm)
			requestLocalProxies(h, wdeg)
		}

		// Community totals and sizes for this round, keyed by
		// representative node.
		ctot := cfg.newFloatMap(h, npm.SumFloat64())
		csize := cfg.newFloatMap(h, npm.SumFloat64())
		h.ParForMasters(func(_ int, n graph.NodeID) {
			gid := h.HP.GlobalID(n)
			ctot.Set(gid, 0)
			csize.Set(gid, 0)
		})
		ctot.InitSync()
		csize.InitSync()
		h.TimeCompute(func() {
			h.ParForMasters(func(tid int, n graph.NodeID) {
				gid := h.HP.GlobalID(n)
				c := cm.Read(gid)
				csize.Reduce(tid, c, 1)
				k := wdeg.Read(gid)
				if k != 0 {
					ctot.Reduce(tid, c, k)
				}
			})
		})
		ctot.ReduceSync()
		csize.ReduceSync()

		// Round modularity: Q = intra/2m - sum(tot_c^2)/(2m)^2.
		var intra, totSq runtime.SumReducer
		if cfg.requestActive() {
			requestLocalProxies(h, ctot)
			requestLocalProxies(h, cm)
		}
		h.TimeCompute(func() {
			h.ParForNodes(func(tid int, n graph.NodeID) {
				cn := cm.Read(h.HP.GlobalID(n))
				lo, hi := local.EdgeRange(n)
				for e := lo; e < hi; e++ {
					if cm.Read(h.HP.GlobalID(local.Dst(e))) == cn {
						intra.Reduce(local.Weight(e))
					}
				}
			})
			h.ParForMasters(func(tid int, n graph.NodeID) {
				t := ctot.Read(h.HP.GlobalID(n))
				if t != 0 {
					totSq.Reduce(t * t)
				}
			})
		})
		intra.Sync(h.EP)
		totSq.Sync(h.EP)
		q := intra.Read()/twoM - totSq.Read()/(twoM*twoM)
		if q-prevQ < opts.MinDelta && rounds > 0 {
			break
		}
		prevQ = q

		// Request phase: each master needs the totals of its own and all
		// neighbor communities — dynamically computed node IDs.
		h.TimeCompute(func() {
			h.ParForMasters(func(_ int, n graph.NodeID) {
				gid := h.HP.GlobalID(n)
				own := cm.Read(gid)
				ctot.Request(own)
				csize.Request(own)
				lo, hi := local.EdgeRange(n)
				for e := lo; e < hi; e++ {
					c := cm.Read(h.HP.GlobalID(local.Dst(e)))
					ctot.Request(c)
					csize.Request(c)
				}
			})
		})
		ctot.RequestSync()
		csize.RequestSync()

		// Move phase: greedy best community with deterministic
		// tie-breaking (highest gain, then smallest community ID; ties
		// with the current community keep the node put unless the
		// candidate ID is smaller, damping oscillation).
		var moved runtime.CountReducer
		h.TimeCompute(func() {
			h.ParForMasters(func(tid int, n graph.NodeID) {
				gid := h.HP.GlobalID(n)
				if opts.EarlyTermination && stable[n] >= 4 {
					// Skip with probability 3/4, deterministically.
					if (uint32(gid)*2654435769+uint32(rounds))&3 != 0 {
						return
					}
				}
				a := cm.Read(gid)
				kn := wdeg.Read(gid)
				if kn == 0 {
					return
				}
				// Accumulate k_{n->c} per neighbor community.
				links := map[graph.NodeID]float64{}
				lo, hi := local.EdgeRange(n)
				for e := lo; e < hi; e++ {
					dgid := h.HP.GlobalID(local.Dst(e))
					if dgid == gid {
						continue
					}
					links[cm.Read(dgid)] += local.Weight(e)
				}
				base := links[a] - (ctot.Read(a)-kn)*kn/twoM
				best, bestGain := a, base
				for c, knc := range links {
					if c == a {
						continue
					}
					gain := knc - ctot.Read(c)*kn/twoM
					if gain > bestGain+1e-12 || (gain > bestGain-1e-12 && c < best) {
						best, bestGain = c, gain
					}
				}
				if best != a && csize.Read(a) == 1 && csize.Read(best) == 1 && best > a {
					// Grappolo's swap-breaking rule: between two singleton
					// communities, only the move toward the smaller ID is
					// allowed, which makes synchronous rounds converge.
					best = a
				}
				if best != a {
					cm.Reduce(tid, gid, best)
					moved.Reduce(1)
					if opts.EarlyTermination {
						stable[n] = 0
					}
				} else if opts.EarlyTermination && stable[n] < 4 {
					stable[n]++
				}
			})
		})
		cm.ReduceSync()
		cm.BroadcastSync()
		cfg.recordStats(ctot)
		cfg.recordStats(csize)
		moved.Sync(h.EP)
		totalMoved += moved.Read() // global count, identical on all hosts
		if moved.Read() == 0 {
			rounds++
			break
		}
	}

	cm.UnpinMirrors()
	wdeg.UnpinMirrors()
	CollectNodeValues(h, cm, assign)
	cfg.recordStats(cm)
	cfg.recordStats(wdeg)
	return rounds, totalMoved
}

// contract builds the coarse graph: one supernode per community, edge
// weights aggregated, intra-community weight kept as supernode self-loops
// so modularity is preserved across levels. remap translates community
// labels to coarse node IDs.
func contract(g *graph.Graph, assign []graph.NodeID) (*graph.Graph, map[graph.NodeID]graph.NodeID) {
	remap := make(map[graph.NodeID]graph.NodeID)
	for _, c := range assign {
		if _, ok := remap[c]; !ok {
			remap[c] = graph.NodeID(len(remap))
		}
	}
	agg := make(map[[2]graph.NodeID]float64)
	for n := 0; n < g.NumNodes(); n++ {
		cs := remap[assign[n]]
		lo, hi := g.EdgeRange(graph.NodeID(n))
		for e := lo; e < hi; e++ {
			cd := remap[assign[g.Dst(e)]]
			agg[[2]graph.NodeID{cs, cd}] += g.Weight(e)
		}
	}
	b := graph.NewBuilder(len(remap))
	for k, w := range agg {
		b.AddWeightedEdge(k[0], k[1], w)
	}
	return b.Build(), remap
}

// Preset-driven helper so benchmarks and examples can run LV on the
// paper's graph classes without repeating setup.
func LouvainOnPreset(p gen.Preset, ccfg runtime.Config, acfg Config) (CDResult, error) {
	return Louvain(gen.Build(p), ccfg, acfg, CDOptions{})
}
