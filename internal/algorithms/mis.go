package algorithms

import (
	"math"

	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

// Priority-based maximal independent set (Burtscher et al.), an
// adjacent-vertex program (Table 2). Each node gets a static priority
// derived from its global degree; each round a node joins the set when its
// priority beats every undecided neighbor's, and neighbors of new members
// drop out.
//
// Under vertex-cut partitioning a proxy sees only part of a node's
// adjacency, so "beats every neighbor" is itself computed with a
// reduction: every edge location min-reduces the undecided neighbor's
// priority onto the node, and the master compares against its own
// priority. The paper's MIS uses two node-property maps (priority and
// state); the per-round minimum-neighbor-priority map makes a third here.

// Node states, ordered so the max reduction only moves a node forward:
// undecided -> out -> in. Adjacent nodes can never both enter in one round
// (priorities are distinct), so in/out conflicts cannot arise.
const (
	misUndecided graph.NodeID = 0
	misOut       graph.NodeID = 1
	misIn        graph.NodeID = 2
)

// MISStats reports per-run counters.
type MISStats struct {
	Rounds int
	Size   int64 // members of the independent set
}

// MIS computes a maximal independent set (SPMD). out[n] is set true for
// members, filled for this host's master range.
func MIS(h *runtime.Host, cfg Config, out []bool) MISStats {
	local := h.HP.Local

	// Phase 1: global degrees (local degrees are partial under vertex
	// cuts), then static priorities: lower score = higher priority;
	// low-degree nodes win, ties broken by ID, so scores are distinct.
	degree := cfg.newFloatMap(h, npm.SumFloat64())
	h.ParForNodes(func(_ int, n graph.NodeID) { degree.Set(h.HP.GlobalID(n), 0) })
	degree.InitSync()
	h.TimeCompute(func() {
		h.ParForNodes(func(tid int, n graph.NodeID) {
			if d := local.Degree(n); d > 0 {
				degree.Reduce(tid, h.HP.GlobalID(n), float64(d))
			}
		})
	})
	degree.ReduceSync()

	prio := cfg.newFloatMap(h, npm.MinFloat64())
	if cfg.requestActive() {
		requestLocalProxies(h, degree)
	}
	n64 := float64(h.HP.NumGlobalNodes() + 1)
	h.ParForMasters(func(_ int, n graph.NodeID) {
		gid := h.HP.GlobalID(n)
		// Tie-break on the original ID so priorities — and therefore the
		// selected set — are identical with vertex reordering on or off
		// (degrees are permutation-invariant already).
		prio.Set(gid, degree.Read(gid)*n64+float64(h.HP.OriginalID(gid)))
	})
	prio.InitSync()
	prio.PinMirrors()

	state := cfg.newNodeMap(h, npm.MaxNodeID())
	h.ParForNodes(func(_ int, n graph.NodeID) {
		state.Set(h.HP.GlobalID(n), misUndecided)
	})
	state.InitSync()
	state.PinMirrors()

	// The frontier is the undecided set, managed by the algorithm itself
	// (no map hook needed, so it works on every backend): a proxy leaves it
	// permanently once its state is decided, and every MIS phase only ever
	// needs to visit undecided proxies — decided nodes contribute nothing
	// to minNbr, cannot re-decide, and knocked out all their undecided
	// neighbors in the round they joined the set.
	var fr *runtime.Frontier
	if !cfg.Dense {
		fr = runtime.NewFrontier(h.HP.NumLocal())
		fr.ActivateAll()
		fr.Advance()
	}

	// Direction-optimized execution: under a pull-complete partition each
	// of the three stages has a bottom-up form over the in-edge CSR —
	// accumulate computes each undecided master's complete
	// minimum-neighbor priority locally (no minNbr reduce collective at
	// all), decide writes only the master's own slot, and knockout scans
	// each undecided master's in-neighbors for a fresh member instead of
	// scattering misOut. Every stage updates masters in place and ends
	// with at most a broadcast. The per-round direction decision reuses
	// the globally-synced `remaining` count from the previous round
	// (every host already has it), so adaptive rounds add no collectives.
	de := cfg.newDirEngine(h, state, false)

	// Async execution: the three per-round stages become priority drains
	// (high-degree vertices first — they knock out the most neighbors).
	// Only the knockout stage writes state concurrently with reads, so it
	// and the decide stage go through the CAS handle; the accumulate stage
	// only buffers minNbr reduces and merely gains the scheduler. The
	// round structure and every collective stay exactly as in BSP, so the
	// per-round decisions — and the final set — are bit-identical.
	eng := cfg.newEngine(h, fr, state)
	if de != nil {
		eng = nil // direction-capable phases run BSP rounds (see CCSV)
	}
	var misOpts runtime.AsyncOpts
	if eng != nil {
		avg := 1
		if h.HP.NumLocal() > 0 {
			avg = int(local.NumEdges()) / h.HP.NumLocal()
		}
		misOpts = runtime.AsyncOpts{Levels: 2, Priority: degreePriority(local, avg)}
	}

	var stats MISStats
	var remaining runtime.CountReducer
	// Globally-synced undecided-master count driving the direction rule;
	// every master starts undecided, so the first round's density is the
	// full master count on every host without a collective.
	undecided := int64(0)
	if de != nil {
		undecided = de.totalMasters
	}
	for {
		stats.Rounds++
		mode := runtime.ModeBSP
		var drain runtime.DrainStats
		if fr != nil {
			mode = eng.roundMode(fr.Count())
		}
		dir := de.directionFromGlobalActive(undecided)

		// Per-round map: minimum priority among each node's undecided
		// neighbors, accumulated from every edge location — except in a
		// pull round, where each undecided master computes the complete
		// minimum from its in-edges (all present under a pull-complete
		// partition) and the collective is skipped entirely.
		minNbr := cfg.newFloatMap(h, npm.MinFloat64())
		h.ParForMasters(func(_ int, n graph.NodeID) {
			minNbr.Set(h.HP.GlobalID(n), math.Inf(1))
		})
		minNbr.InitSync()
		if cfg.requestActive() {
			requestLocalProxies(h, state)
			requestLocalProxies(h, prio)
		}
		if dir == runtime.DirPull {
			phMin, _ := npm.Pull(minNbr)
			phMin.BeginPullRound()
			h.TimeCompute(func() {
				h.ParForPull(func(_ int, n graph.NodeID) {
					gid := h.HP.GlobalID(n)
					if state.Read(gid) != misUndecided {
						return
					}
					lo, hi := local.InEdgeRange(n)
					for e := lo; e < hi; e++ {
						sgid := h.HP.GlobalID(local.InSrc(e))
						if sgid != gid && state.Read(sgid) == misUndecided {
							phMin.Apply(n, prio.Read(sgid))
						}
					}
				})
			})
			phMin.EndPullRound()
		} else {
			accBody := func(tid int, n graph.NodeID) {
				gid := h.HP.GlobalID(n)
				if state.Read(gid) != misUndecided {
					return
				}
				lo, hi := local.EdgeRange(n)
				for e := lo; e < hi; e++ {
					dgid := h.HP.GlobalID(local.Dst(e))
					if dgid != gid && state.Read(dgid) == misUndecided {
						minNbr.Reduce(tid, gid, prio.Read(dgid))
					}
				}
			}
			h.TimeCompute(func() {
				if mode == runtime.ModeAsync {
					d := h.AsyncDrain(fr, misOpts, func(tid int, n graph.NodeID, _ *runtime.AsyncCtx) {
						accBody(tid, n)
					})
					drain.Accumulate(d)
				} else if fr != nil {
					h.ParForActive(fr, accBody)
				} else {
					h.ParForNodes(accBody)
				}
			})
			minNbr.ReduceSync()
		}

		// Decision: an undecided master with priority below all undecided
		// neighbors joins the set.
		if cfg.requestActive() {
			requestLocalProxies(h, state)
			requestLocalProxies(h, minNbr)
			requestLocalProxies(h, prio)
		}
		state.ResetUpdated()
		if dir == runtime.DirPull {
			// Each master decides only itself, so a pull round needs no
			// state reduce collective at all: write the own slot through
			// the handle and publish with the broadcast below.
			ph := de.ph
			ph.BeginPullRound()
			h.TimeCompute(func() {
				h.ParForPull(func(_ int, n graph.NodeID) {
					if ph.Value(n) != misUndecided {
						return
					}
					gid := h.HP.GlobalID(n)
					if prio.Read(gid) < minNbr.Read(gid) {
						ph.Apply(n, misIn)
					}
				})
			})
			ph.EndPullRound()
		} else {
			decBody := func(tid int, n graph.NodeID) {
				gid := h.HP.GlobalID(n)
				if state.Read(gid) != misUndecided {
					return
				}
				if prio.Read(gid) < minNbr.Read(gid) {
					state.Reduce(tid, gid, misIn)
				}
			}
			h.TimeCompute(func() {
				nm := h.HP.NumMasters
				if mode == runtime.ModeAsync {
					// Each master decides only itself, but neighboring masters
					// decide concurrently in the same drain, so state moves
					// through the CAS handle.
					sh := eng.ah
					d := h.AsyncDrain(fr, misOpts, func(tid int, n graph.NodeID, _ *runtime.AsyncCtx) {
						if int(n) >= nm {
							return
						}
						gid := h.HP.GlobalID(n)
						if st, ok := sh.Load(gid); !ok || st != misUndecided {
							return
						}
						if prio.Read(gid) < minNbr.Read(gid) {
							sh.ReduceAsync(tid, gid, misIn)
						}
					})
					drain.Accumulate(d)
				} else if fr != nil {
					h.ParForActive(fr, func(tid int, n graph.NodeID) {
						if int(n) < nm {
							decBody(tid, n)
						}
					})
				} else {
					h.ParForMasters(decBody)
				}
			})
			state.ReduceSync()
		}
		state.BroadcastSync()

		// Knock-out: undecided neighbors of new members drop out. The
		// frontier holds last round's undecided proxies, so a misIn state
		// there means the node joined *this* round — exactly the members
		// whose neighbors still need knocking out.
		if cfg.requestActive() {
			requestLocalProxies(h, state)
		}
		if dir == runtime.DirPull {
			// Bottom-up knockout: an undecided master drops out when any
			// in-neighbor just joined the set. Value reads the post-decide
			// snapshot (masters) and the freshly broadcast mirrors, the
			// same values the push body's round-start reads see; the write
			// targets only the own slot, so again no reduce collective.
			ph := de.ph
			ph.BeginPullRound()
			h.TimeCompute(func() {
				h.ParForPull(func(_ int, n graph.NodeID) {
					if ph.Value(n) != misUndecided {
						return
					}
					gid := h.HP.GlobalID(n)
					lo, hi := local.InEdgeRange(n)
					for e := lo; e < hi; e++ {
						s := local.InSrc(e)
						if h.HP.GlobalID(s) != gid && ph.Value(s) == misIn {
							ph.Apply(n, misOut)
							break
						}
					}
				})
			})
			ph.EndPullRound()
			state.BroadcastSync()
		} else {
			koBody := func(tid int, n graph.NodeID) {
				gid := h.HP.GlobalID(n)
				if state.Read(gid) != misIn {
					return
				}
				lo, hi := local.EdgeRange(n)
				for e := lo; e < hi; e++ {
					dgid := h.HP.GlobalID(local.Dst(e))
					if dgid != gid && state.Read(dgid) == misUndecided {
						state.Reduce(tid, dgid, misOut)
					}
				}
			}
			h.TimeCompute(func() {
				if mode == runtime.ModeAsync {
					// Knockouts write neighbors' state while peers read it, so
					// both sides go through the CAS handle. No re-enqueue:
					// knocked-out vertices trigger no further knockouts.
					sh := eng.ah
					d := h.AsyncDrain(fr, misOpts, func(tid int, n graph.NodeID, _ *runtime.AsyncCtx) {
						gid := h.HP.GlobalID(n)
						if st, ok := sh.Load(gid); !ok || st != misIn {
							return
						}
						lo, hi := local.EdgeRange(n)
						for e := lo; e < hi; e++ {
							dgid := h.HP.GlobalID(local.Dst(e))
							if dgid == gid {
								continue
							}
							if st, ok := sh.Load(dgid); ok && st == misUndecided {
								sh.ReduceAsync(tid, dgid, misOut)
							}
						}
					})
					drain.Accumulate(d)
				} else if fr != nil {
					h.ParForActive(fr, koBody)
				} else {
					h.ParForNodes(koBody)
				}
			})
			state.ReduceSync()
			state.BroadcastSync()
		}
		if fr != nil {
			eng.observe(mode, fr.Count(), fr.Size(), drain)
		}

		if cfg.requestActive() {
			requestLocalProxies(h, state)
		}
		if fr != nil {
			// Carry still-undecided proxies into the next round's frontier
			// and count the undecided masters from it.
			h.ParForActive(fr, func(_ int, n graph.NodeID) {
				if state.Read(h.HP.GlobalID(n)) == misUndecided {
					fr.Activate(int(n))
				}
			})
			fr.Advance()
			remaining.Set(int64(fr.CountRange(0, h.HP.NumMasters)))
		} else {
			remaining.Set(0)
			h.ParForMasters(func(_ int, n graph.NodeID) {
				if state.Read(h.HP.GlobalID(n)) == misUndecided {
					remaining.Reduce(1)
				}
			})
		}
		remaining.Sync(h.EP)
		undecided = remaining.Read()
		if undecided == 0 || stats.Rounds >= cfg.maxRounds() {
			break
		}
	}
	state.UnpinMirrors()
	prio.UnpinMirrors()

	var size runtime.CountReducer
	lo, hi := h.HP.MasterRangeGlobal()
	for g := lo; g < hi; g++ {
		state.Request(g)
	}
	state.RequestSync()
	for g := lo; g < hi; g++ {
		if state.Read(g) == misIn {
			out[h.HP.OriginalID(g)] = true
			size.Reduce(1)
		}
	}
	size.Sync(h.EP)
	stats.Size = size.Read()
	cfg.recordStats(degree)
	cfg.recordStats(prio)
	cfg.recordStats(state)
	return stats
}
