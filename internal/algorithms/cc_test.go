package algorithms

import (
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/npm"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// runCC executes one of the CC algorithms on a fresh cluster and returns
// the assembled global labels.
func runCC(t *testing.T, g *graph.Graph, hosts int, pol partition.Policy, cfg Config,
	algo func(h *runtime.Host, cfg Config, out []graph.NodeID) CCStats) []graph.NodeID {
	t.Helper()
	c, err := runtime.NewCluster(g, runtime.Config{
		NumHosts: hosts, ThreadsPerHost: 3, Policy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if cfg.Variant == npm.MC && cfg.Store == nil {
		cfg.Store = kvstore.NewCluster(hosts, hosts)
	}
	out := make([]graph.NodeID, g.NumNodes())
	c.Run(func(h *runtime.Host) { algo(h, cfg, out) })
	return out
}

func checkLabels(t *testing.T, g *graph.Graph, got []graph.NodeID, name string) {
	t.Helper()
	want := graph.ReferenceComponents(g)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: node %d labeled %d, want %d", name, i, got[i], want[i])
		}
	}
}

func ccAlgos() map[string]func(h *runtime.Host, cfg Config, out []graph.NodeID) CCStats {
	return map[string]func(h *runtime.Host, cfg Config, out []graph.NodeID) CCStats{
		"CC-SV":   CCSV,
		"CC-LP":   CCLP,
		"CC-SCLP": CCSCLP,
	}
}

func TestCCAlgorithmsMatchReference(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid":  gen.Grid(10, 10, false, 1),
		"rmat":  gen.RMAT(8, 6, false, 2),
		"chain": gen.Chain(64, false, 3),
		"er":    gen.ErdosRenyi(150, 120, false, 4), // likely several components
	}
	for gname, g := range graphs {
		for aname, algo := range ccAlgos() {
			for _, hosts := range []int{1, 2, 4} {
				got := runCC(t, g, hosts, partition.CVC, Config{}, algo)
				t.Run(gname+"/"+aname, func(t *testing.T) {
					checkLabels(t, g, got, aname)
				})
			}
		}
	}
}

func TestCCAllPolicies(t *testing.T) {
	g := gen.RMAT(7, 4, false, 5)
	for _, pol := range partition.Policies {
		got := runCC(t, g, 3, pol, Config{}, CCSV)
		checkLabels(t, g, got, "CC-SV/"+string(pol))
	}
}

func TestCCSVAllVariants(t *testing.T) {
	g := gen.Grid(8, 8, false, 1)
	for _, v := range npm.Variants {
		t.Run(string(v), func(t *testing.T) {
			got := runCC(t, g, 3, partition.CVC, Config{Variant: v}, CCSV)
			checkLabels(t, g, got, "CC-SV")
		})
	}
}

func TestCCLPAllVariants(t *testing.T) {
	g := gen.Grid(6, 6, false, 1)
	for _, v := range npm.Variants {
		t.Run(string(v), func(t *testing.T) {
			got := runCC(t, g, 2, partition.OEC, Config{Variant: v}, CCLP)
			checkLabels(t, g, got, "CC-LP")
		})
	}
}

func TestCCStatsPopulated(t *testing.T) {
	g := gen.Chain(100, false, 1)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]graph.NodeID, g.NumNodes())
	stats := make([]CCStats, 2)
	c.Run(func(h *runtime.Host) { stats[h.Rank] = CCSV(h, Config{}, out) })
	if stats[0].HookRounds == 0 || stats[0].ShortcutRounds == 0 {
		t.Fatalf("stats not populated: %+v", stats[0])
	}
	// Pointer jumping should need far fewer rounds than the chain length.
	if stats[0].OuterRounds > 20 {
		t.Fatalf("CC-SV took %d outer rounds on a 100-chain", stats[0].OuterRounds)
	}
}

func TestCCLPRoundsScaleWithDiameter(t *testing.T) {
	// LP needs ~diameter rounds; SV pointer jumping needs ~log rounds.
	g := gen.Chain(128, false, 1)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]graph.NodeID, g.NumNodes())
	var lp, sv CCStats
	c.Run(func(h *runtime.Host) {
		s := CCLP(h, Config{}, out)
		if h.Rank == 0 {
			lp = s
		}
	})
	c2, err := runtime.NewCluster(g, runtime.Config{NumHosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.Run(func(h *runtime.Host) {
		s := CCSV(h, Config{}, out)
		if h.Rank == 0 {
			sv = s
		}
	})
	totalSV := sv.HookRounds + sv.ShortcutRounds
	if lp.HookRounds <= totalSV {
		t.Fatalf("expected LP rounds (%d) to exceed SV rounds (%d) on a chain",
			lp.HookRounds, totalSV)
	}
}

func TestTable2Registry(t *testing.T) {
	if len(Table2) != 7 {
		t.Fatalf("Table 2 lists 7 applications, got %d", len(Table2))
	}
	kinds := map[string]OperatorKind{}
	for _, k := range Table2 {
		kinds[k.Name] = k
	}
	// Spot-check the paper's rows.
	if !kinds["LV"].AdjacentVertex || !kinds["LV"].TransVertex {
		t.Error("LV uses both operator kinds")
	}
	if kinds["CC-SV"].AdjacentVertex || !kinds["CC-SV"].TransVertex {
		t.Error("CC-SV is trans-vertex only")
	}
	if !kinds["MIS"].AdjacentVertex || kinds["MIS"].TransVertex {
		t.Error("MIS is adjacent-vertex only")
	}
	if kinds["MSF"].AdjacentVertex || !kinds["MSF"].TransVertex {
		t.Error("MSF is trans-vertex only")
	}
}
