package algorithms

import (
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

// Direction-optimizing execution (Beamer-style push/pull): dense rounds of
// the label-fixpoint algorithms can run "bottom-up" — every master scans
// its in-neighbors over the transpose CSR and folds their values into its
// own slot with plain stores — instead of scattering reduces along
// out-edges. A pull round produces no reduce payload at all: masters are
// updated in place and the round ends with the broadcast only.
//
// Legality is checked once per phase, not per round:
//
//   - The partition must be pull-complete (every in-edge of every master
//     stored at that master's owner — IEC, or any single-host run). This
//     is structural, so all hosts agree without a collective; on OEC/CVC
//     multi-host partitions the engine is nil and everything stays push.
//   - The map variant must support pull (npm.Pull: Full only). Variant is
//     SPMD-identical configuration, so again all hosts agree.
//
// Unlike the intra-round mode choice (async.go), direction is a GLOBAL
// per-round decision: a pull round issues a different collective sequence
// (no ReduceSync), so the adaptive rule runs on allreduced telemetry —
// active master count and the active masters' summed in-degree — and
// every host computes the same answer in lockstep. For the same reason a
// direction-capable phase forces the intra-round mode to BSP: the async
// drain CAS-writes pinned mirrors in place, which would break the mirror
// freshness a later pull round depends on, and its host-local divergence
// is only safe when the collective sequence is fixed.

// Direction selects the traversal direction for the dense-capable rounds
// of CC-SV, CC-LP, and MIS (see Config.Direction).
type Direction string

const (
	// DirPush is the classic scatter-reduce execution (the default).
	DirPush Direction = "push"
	// DirPull forces every direction-capable round to pull.
	DirPull Direction = "pull"
	// DirAdaptive chooses per round from globally-reduced frontier
	// telemetry (runtime.Adaptive.NextDirection).
	DirAdaptive Direction = "adaptive"
)

// dirEngine is the per-phase direction controller. A nil *dirEngine means
// every round pushes; all call sites tolerate nil.
type dirEngine struct {
	h  *runtime.Host
	ph *npm.PullHandle[graph.NodeID]
	ad *runtime.Adaptive // nil for static DirPull

	totalMasters int64 // allreduced once at construction
	totalEdges   int64

	// reformulated marks a pull hook that is a convergence-changing
	// reformulation of the push hook rather than an exact transpose:
	// CC-SV's pull fold propagates labels one hop per round (LP-style)
	// where its push hook jumps through parent pointers, so pull rounds
	// are cheaper but retire less work. The density telemetry cannot see
	// that difference — on a high-diameter graph the frontier stays dense
	// for ~diameter rounds under pull — so under DirAdaptive a
	// reformulated hook gets a bounded trial (pullTrialRounds consecutive
	// pull rounds) before the engine reverts to push for the rest of the
	// run. Low-diameter phases finish inside the trial; high-diameter
	// ones cap their regret at the trial length instead of paying
	// diameter rounds. Static DirPull is exempt: a forced direction is
	// the caller's choice. The state is driven purely by the (globally
	// agreed) direction sequence, so all hosts stay in lockstep.
	reformulated bool
	pullStreak   int
	pullDone     bool
}

// pullTrialRounds bounds consecutive adaptive pull rounds for
// reformulated hooks. The perf R-MAT's hook phase completes in ~5 pull
// rounds, well inside the budget; a 192x192 grid would otherwise take
// ~384.
const pullTrialRounds = 8

// newDirEngine builds the direction controller for a phase over map m, or
// nil when every round must push: direction is unset/push, the partition
// is not pull-complete, or the variant lacks pull support. reformulated
// marks a pull hook that changes per-round convergence (see the field
// doc). Construction is collective under pull (it allreduces the totals
// the adaptive rule needs), which is safe because every nil-condition is
// SPMD-identical across hosts.
func (c Config) newDirEngine(h *runtime.Host, m npm.Map[graph.NodeID], reformulated bool) *dirEngine {
	if c.Direction == "" || c.Direction == DirPush {
		return nil
	}
	if !h.HP.PullEdgesComplete() {
		return nil
	}
	ph, ok := npm.Pull(m)
	if !ok {
		return nil
	}
	h.HP.EnsureLocalInCSR(h.Threads)
	d := &dirEngine{h: h, ph: ph, reformulated: reformulated}
	var masters, edges runtime.CountReducer
	masters.Set(int64(h.HP.NumMasters))
	masters.Sync(h.EP)
	// Pull-complete partitions store every edge exactly once, at its
	// destination's owner, so the local edge counts sum to |E|.
	edges.Set(h.HP.Local.NumEdges())
	edges.Sync(h.EP)
	d.totalMasters = masters.Read()
	d.totalEdges = edges.Read()
	if c.Direction == DirAdaptive {
		d.ad = runtime.NewAdaptive(h)
	}
	return d
}

// roundDirection decides the coming round's direction from the frontier
// entering it. Collective under DirAdaptive (two allreduces); static
// engines — and dense adaptive rounds, whose telemetry is degenerate —
// answer locally. A nil engine always pushes.
func (d *dirEngine) roundDirection(fr *runtime.Frontier) runtime.Direction {
	if d == nil {
		return runtime.DirPush
	}
	if d.ad == nil {
		return runtime.DirPull
	}
	if fr == nil {
		// Dense execution visits every master every round: density is 1.0
		// by construction, so feed the rule the totals without a collective
		// (the same deterministic inputs on every host).
		return d.trial(d.ad.NextDirection(d.totalMasters, d.totalMasters, d.totalEdges, d.totalEdges))
	}
	var act, inEdges int64
	lg := d.h.HP.Local
	for i := 0; i < d.h.HP.NumMasters; i++ {
		if fr.IsActive(i) {
			act++
			inEdges += int64(lg.InDegree(graph.NodeID(i)))
		}
	}
	var gAct, gIn runtime.CountReducer
	gAct.Set(act)
	gAct.Sync(d.h.EP)
	gIn.Set(inEdges)
	gIn.Sync(d.h.EP)
	return d.trial(d.ad.NextDirection(gAct.Read(), d.totalMasters, gIn.Read(), d.totalEdges))
}

// trial applies the bounded pull trial for reformulated hooks under
// DirAdaptive (see the reformulated field doc); everywhere else it is the
// identity.
func (d *dirEngine) trial(dir runtime.Direction) runtime.Direction {
	if d.ad == nil || !d.reformulated {
		return dir
	}
	if d.pullDone {
		return runtime.DirPush
	}
	if dir != runtime.DirPull {
		d.pullStreak = 0
		return dir
	}
	d.pullStreak++
	if d.pullStreak > pullTrialRounds {
		d.pullDone = true
		return runtime.DirPush
	}
	return dir
}

// directionFromGlobalActive decides a round's direction from an
// already-allreduced active-master count (MIS reuses its `remaining`
// reducer rather than adding a collective). The active in-edge volume is
// estimated as active * average in-degree — exact enough for the density
// trigger, and a deterministic function of global inputs.
func (d *dirEngine) directionFromGlobalActive(activeMasters int64) runtime.Direction {
	if d == nil {
		return runtime.DirPush
	}
	if d.ad == nil {
		return runtime.DirPull
	}
	est := int64(0)
	if d.totalMasters > 0 {
		est = activeMasters * (d.totalEdges / d.totalMasters)
	}
	return d.trial(d.ad.NextDirection(activeMasters, d.totalMasters, est, d.totalEdges))
}

// pullMinRound is the dense bottom-up round body shared by the CC pull
// paths: every master folds its in-neighbors' round-start labels into its
// own slot. The handle's snapshot gives Jacobi semantics (scan-order
// independent); ownership makes the applies conflict free; and because no
// value ever targets a remote master, the caller skips ReduceSync and
// ends the round with BroadcastSync alone.
func pullMinRound(h *runtime.Host, ph *npm.PullHandle[graph.NodeID], workDone *runtime.BoolReducer) {
	local := h.HP.Local
	ph.BeginPullRound()
	h.ParForPull(func(_ int, master graph.NodeID) {
		lo, hi := local.InEdgeRange(master)
		for e := lo; e < hi; e++ {
			if ph.Apply(master, ph.Value(local.InSrc(e))) && workDone != nil {
				workDone.Reduce(true)
			}
		}
	})
	ph.EndPullRound()
}
