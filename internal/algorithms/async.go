package algorithms

import (
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

// engine resolves Config.Mode into per-round execution decisions for one
// algorithm phase: which rounds drain asynchronously (and with what
// priority), and — under ExecAdaptive — feeding each round's telemetry
// back to the runtime's policy controller. A nil *engine means the phase
// runs pure BSP; every call site tolerates nil, so the fallback is free.
type engine struct {
	h      *runtime.Host
	ah     *npm.AsyncNodeHandle
	static runtime.ExecMode  // fixed decision when ad is nil
	ad     *runtime.Adaptive // per-round controller (ExecAdaptive)
	half   graph.NodeID      // label-magnitude priority split point
	// pend is the shortcut phase's unresolved-remote set (see ccShortcut),
	// kept here so repeated phases reuse one allocation. Sized like the
	// frontier so drains over it share the scheduler state.
	pend                     *runtime.Bitset
	prevApplied, prevRetries int64
}

// pendSet returns the engine's cleared pending-vertex scratch set.
func (e *engine) pendSet() *runtime.Bitset {
	if e.pend == nil {
		e.pend = runtime.NewBitset(e.h.HP.NumLocal())
	} else {
		e.pend.Clear()
	}
	return e.pend
}

// newEngine builds the engine for a phase over map m, or nil when the
// phase must run BSP: mode is BSP, there is no frontier to drain, or the
// map cannot take in-place CAS applies (non-Full variant, non-idempotent
// operator).
func (c Config) newEngine(h *runtime.Host, fr *runtime.Frontier, m npm.Map[graph.NodeID]) *engine {
	if (c.Mode == "" || c.Mode == ExecBSP) || fr == nil {
		return nil
	}
	ah, ok := npm.AsyncNode(m)
	if !ok {
		return nil
	}
	e := &engine{h: h, ah: ah, half: graph.NodeID(h.HP.NumGlobalNodes() / 2)}
	if c.Mode == ExecAdaptive {
		e.ad = runtime.NewAdaptive(h)
	} else {
		e.static = runtime.ModeAsync
	}
	return e
}

// roundMode decides the coming round's execution mode given the frontier
// count entering it.
func (e *engine) roundMode(active int) runtime.ExecMode {
	if e == nil {
		return runtime.ModeBSP
	}
	if e.ad != nil {
		return e.ad.NextMode(active)
	}
	return e.static
}

// observe feeds one completed round's telemetry to the adaptive
// controller (no-op for static modes).
func (e *engine) observe(mode runtime.ExecMode, active, size int, drain runtime.DrainStats) {
	if e == nil || e.ad == nil {
		return
	}
	applied, retries := e.ah.CASStats()
	e.ad.Observe(runtime.RoundTelemetry{
		Active:       active,
		FrontierSize: size,
		Mode:         mode,
		Drain:        drain,
		CASApplied:   applied - e.prevApplied,
		CASRetries:   retries - e.prevRetries,
	})
	e.prevApplied, e.prevRetries = applied, retries
}

// labelPriority is the CC drain priority: vertices whose current label is
// already in the low half of the ID space run first — low labels are the
// ones that spread (the component minimum is the lowest ID), so
// propagating them early shortens every chain behind them. Reads go
// through the handle because the scheduler calls this concurrently with
// CAS applies.
func (e *engine) labelPriority(n graph.NodeID) int {
	if v, ok := e.ah.Load(e.h.HP.GlobalID(n)); ok && v < e.half {
		return 0
	}
	return 1
}

// ccAsyncOpts is the drain configuration for the CC phases.
func (e *engine) ccAsyncOpts() runtime.AsyncOpts {
	return runtime.AsyncOpts{Levels: 2, Priority: e.labelPriority}
}

// degreePriority returns a MIS drain priority: high-degree vertices first
// (they knock out the most neighbors). deg is captured once per phase —
// static priorities need no atomic reads.
func degreePriority(local *graph.Graph, avg int) func(graph.NodeID) int {
	return func(n graph.NodeID) int {
		if local.Degree(n) >= avg {
			return 0
		}
		return 1
	}
}
