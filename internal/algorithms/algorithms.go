// Package algorithms implements the paper's seven graph algorithms (Table
// 2) on top of the Kimbap node-property map:
//
//	LV      Louvain community detection        (adjacent + trans-vertex)
//	LD      Leiden community detection         (adjacent + trans-vertex)
//	MSF     Boruvka minimum spanning forest    (trans-vertex)
//	CC-LP   label-propagation components       (adjacent-vertex)
//	CC-SCLP shortcutting label propagation     (adjacent + trans-vertex)
//	CC-SV   Shiloach-Vishkin components        (trans-vertex)
//	MIS     priority-based maximal independent (adjacent-vertex)
//
// Each implementation is the BSP program the Kimbap compiler would emit
// (Figure 8): explicit request / reduce / broadcast synchronization with
// the §5.2 optimizations applied. When the configured map variant lacks
// GAR (the §6.4 ablation backends), the generated master-elision would
// read unmaterialized values, so the drivers issue the corresponding
// requests explicitly; on the Full variant those requests are no-ops.
package algorithms

import (
	"kimbap/internal/comm"
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

// Config selects the node-property map backend and safety limits shared by
// all algorithms.
type Config struct {
	// Variant picks the npm implementation; zero value is npm.Full.
	Variant npm.Variant
	// Store backs the MC variant.
	Store npm.MCStore
	// MaxRounds caps BSP rounds as a safety net; 0 means a generous
	// default.
	MaxRounds int
	// StatsSink, if set, receives each property map's read-locality
	// counters when an algorithm finishes (the §4.2 measurement).
	StatsSink ReadStatsSink
	// Dense forces every round to visit all local nodes, disabling the
	// frontier-driven sparse execution of CC/MIS/MSF. The frontier path is
	// the default; Dense exists for the dense-vs-sparse equivalence tests
	// and benchmarks.
	Dense bool
	// LogRounds records per-BSP-round activity (active vertices, reduce
	// bytes sent by this host) into the algorithm's stats.
	LogRounds bool
	// Mode selects the intra-host execution engine for the frontier-driven
	// algorithms (CC-SV, CC-LP, CC-SCLP's shortcut, MIS). The zero value
	// and ExecBSP run classic BSP rounds; ExecAsync drains each round with
	// the priority scheduler (runtime.AsyncDrain) using CAS in-place
	// applies; ExecAdaptive chooses per round from telemetry. Non-BSP
	// modes silently fall back to BSP when the phase cannot support them
	// (no frontier, non-Full variant, non-idempotent operator) — final
	// outputs are bit-identical in every mode.
	Mode Mode
	// Direction selects the traversal direction for the dense-capable
	// rounds of CC-SV, CC-LP, and MIS (see direction.go). The zero value
	// and DirPush run the classic scatter-reduce rounds; DirPull runs
	// every capable round bottom-up over the in-edge CSR with a
	// broadcast-only round end; DirAdaptive chooses per round from
	// globally-reduced frontier telemetry. Non-push directions silently
	// fall back to push when the phase cannot pull (non-pull-complete
	// partition, non-Full variant) and force Mode to BSP — outputs are
	// bit-identical in every direction.
	Direction Direction
}

// Mode names an intra-host execution engine (see Config.Mode).
type Mode string

const (
	ExecBSP      Mode = "bsp"
	ExecAsync    Mode = "async"
	ExecAdaptive Mode = "adaptive"
)

// ReadStatsSink receives read-locality counters.
type ReadStatsSink interface {
	Record(master, remote int64)
}

// recordStats forwards a map's counters to the sink, if any.
func (c Config) recordStats(m interface{ ReadStats() (int64, int64) }) {
	if c.StatsSink != nil {
		c.StatsSink.Record(m.ReadStats())
	}
}

func (c Config) maxRounds() int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return 1 << 20
}

// requestActive reports whether active-node reads must be requested
// (true for non-GAR backends; see the package comment).
func (c Config) requestActive() bool {
	return c.Variant != npm.Full && c.Variant != ""
}

// newFrontier attaches a fresh frontier over h's local proxies to m when
// frontier-driven execution applies: the backend must implement
// npm.FrontierSink (only the Full variant does) and Dense must be off.
// Returns nil otherwise; callers fall back to dense rounds on nil.
func (c Config) newFrontier(h *runtime.Host, m any) *runtime.Frontier {
	if c.Dense {
		return nil
	}
	sink, ok := m.(npm.FrontierSink)
	if !ok {
		return nil
	}
	f := runtime.NewFrontier(h.HP.NumLocal())
	sink.SetFrontier(f)
	return f
}

// RoundStats is the per-BSP-round activity log filled under
// Config.LogRounds, one entry per round in execution order: how many local
// vertices the round visited, how many reduce-sync payload bytes this host
// sent during it, and whether it was a hook/propagate round (edge work) as
// opposed to a pointer-jumping shortcut round.
type RoundStats struct {
	Active      []int64
	ReduceBytes []int64
	Hook        []bool
	// Mode is the execution mode each round actually ran in ("bsp" or
	// "async") — the policy trace under ExecAdaptive.
	Mode []string
	// Dir is the traversal direction each round actually ran in ("push"
	// or "pull") — the policy trace under DirAdaptive. A pull round's
	// ReduceBytes entry is always zero: the round has no reduce
	// collective at all.
	Dir []string
}

// roundLogger appends one RoundStats entry per record call, charging each
// round the TagReduce bytes sent since the previous one.
type roundLogger struct {
	h    *runtime.Host
	out  *RoundStats
	prev int64
}

func (c Config) roundLogger(h *runtime.Host, out *RoundStats) *roundLogger {
	if !c.LogRounds {
		return nil
	}
	return &roundLogger{h: h, out: out, prev: reduceBytesSent(h)}
}

func reduceBytesSent(h *runtime.Host) int64 {
	_, b := h.EP.StatsByTag()
	return b[comm.TagReduce]
}

func (r *roundLogger) record(active int, hook bool, mode runtime.ExecMode, dir runtime.Direction) {
	if r == nil {
		return
	}
	now := reduceBytesSent(r.h)
	r.out.Active = append(r.out.Active, int64(active))
	r.out.ReduceBytes = append(r.out.ReduceBytes, now-r.prev)
	r.out.Hook = append(r.out.Hook, hook)
	r.out.Mode = append(r.out.Mode, mode.String())
	r.out.Dir = append(r.out.Dir, dir.String())
	r.prev = now
}

func (c Config) newNodeMap(h *runtime.Host, op npm.ReduceOp[graph.NodeID]) npm.Map[graph.NodeID] {
	return npm.New(npm.Options[graph.NodeID]{
		Host: h, Op: op, Codec: npm.NodeIDCodec{}, Variant: c.Variant, Store: c.Store,
		TrackReads: c.StatsSink != nil,
	})
}

func (c Config) newFloatMap(h *runtime.Host, op npm.ReduceOp[float64]) npm.Map[float64] {
	return npm.New(npm.Options[float64]{
		Host: h, Op: op, Codec: npm.Float64Codec{}, Variant: c.Variant, Store: c.Store,
		TrackReads: c.StatsSink != nil,
	})
}

// OperatorKind records which operator classes an application uses
// (the paper's Table 2).
type OperatorKind struct {
	Name           string
	AdjacentVertex bool
	TransVertex    bool
}

// Table2 is the application/operator registry reproduced from the paper.
var Table2 = []OperatorKind{
	{Name: "LV", AdjacentVertex: true, TransVertex: true},
	{Name: "LD", AdjacentVertex: true, TransVertex: true},
	{Name: "MSF", AdjacentVertex: false, TransVertex: true},
	{Name: "CC-LP", AdjacentVertex: true, TransVertex: false},
	{Name: "CC-SCLP", AdjacentVertex: true, TransVertex: true},
	{Name: "CC-SV", AdjacentVertex: false, TransVertex: true},
	{Name: "MIS", AdjacentVertex: true, TransVertex: false},
}

// initOwn sets every local proxy's property to its own *original* node ID
// and publishes the values (the Figure 4 initialization idiom). Seeding
// original IDs keeps every ID-valued property in original-ID space when
// the cluster runs on a reordered graph (DESIGN.md §14): min-label
// fixpoints then converge to the same labels with reordering on or off,
// and only the sites that use a property value as an address translate
// (HostPartition.CurrentID). Without reordering OriginalID is the
// identity, so this is the classic m.Set(gid, gid).
func initOwn(h *runtime.Host, m npm.Map[graph.NodeID]) {
	h.ParForNodes(func(_ int, local graph.NodeID) {
		gid := h.HP.GlobalID(local)
		m.Set(gid, h.HP.OriginalID(gid))
	})
	m.InitSync()
}

// requestLocalProxies requests the properties of every local proxy. Non-GAR
// backends need this before reading active-node properties; it is cheap
// no-ops on Full.
func requestLocalProxies[V comparable](h *runtime.Host, m npm.Map[V]) {
	h.ParForNodes(func(_ int, local graph.NodeID) {
		m.Request(h.HP.GlobalID(local))
	})
	m.RequestSync()
}

// readAllMasters copies this host's master values into out (indexed by
// *original* node ID, so callers see the same layout whether or not the
// cluster reordered its vertices); entries outside the master range are
// untouched.
func readAllMasters[V comparable](h *runtime.Host, m npm.Map[V], out []V) {
	lo, hi := h.HP.MasterRangeGlobal()
	if hi > lo {
		for n := lo; n < hi; n++ {
			m.Request(n)
		}
		m.RequestSync()
		for n := lo; n < hi; n++ {
			out[h.HP.OriginalID(n)] = m.Read(n)
		}
	} else {
		m.RequestSync()
	}
}

// CollectNodeValues runs after an SPMD algorithm: each host fills in its
// master range of the shared output slice. The slice must be pre-allocated
// with the global node count; hosts write disjoint ranges.
func CollectNodeValues[V comparable](h *runtime.Host, m npm.Map[V], out []V) {
	readAllMasters(h, m, out)
}
