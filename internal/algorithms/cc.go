package algorithms

import (
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

// The three connected-components algorithms from the paper (§6.1):
// CC-SV (Shiloach-Vishkin, trans-vertex), CC-LP (label propagation,
// adjacent-vertex), and CC-SCLP (shortcutting label propagation, both).
// All label every node with the smallest node ID in its component.
//
// CC-SV and CC-LP run frontier-driven by default on the Full variant (see
// DESIGN.md §10): the property map activates every local proxy whose value
// changes during a sync phase, and the next round iterates only the active
// set. Late rounds — where <1% of vertices still change — then cost
// O(active) instead of O(|V|). Config.Dense restores the dense loops; the
// labels are identical either way (the min-label fixpoint does not depend
// on evaluation order).

// CCStats reports per-run counters.
type CCStats struct {
	HookRounds     int // hook (or propagate) BSP rounds
	ShortcutRounds int
	OuterRounds    int
	// PerRound is filled under Config.LogRounds, one entry per BSP round in
	// execution order (hook rounds, then shortcut rounds, per outer round).
	PerRound RoundStats
}

// CCSV runs Shiloach-Vishkin connected components on one host (SPMD).
// It is the hand-written equivalent of the compiler output in Figure 8.
// After it returns, out (length = global node count) holds this host's
// master labels.
func CCSV(h *runtime.Host, cfg Config, out []graph.NodeID) CCStats {
	parent := cfg.newNodeMap(h, npm.MinNodeID())
	initOwn(h, parent)

	var stats CCStats
	fr := cfg.newFrontier(h, parent)
	rl := cfg.roundLogger(h, &stats.PerRound)
	// CC-SV's pull hook is a reformulation (LP-style one-hop fold, not a
	// transpose of the pointer-jumping hook), so adaptive pull runs under
	// the bounded trial.
	de := cfg.newDirEngine(h, parent, true)
	eng := cfg.newEngine(h, fr, parent)
	if de != nil {
		// Direction-capable phases run BSP rounds only: a pull round's
		// collective sequence is fixed globally, and the async drain's
		// in-place mirror CAS would break the mirror freshness pull
		// rounds depend on (see direction.go).
		eng = nil
	}
	// acc accumulates every proxy the shortcut phase changes, so the next
	// outer round's hook phase can start from the changed set instead of a
	// full re-activation (the first hook phase has no prior change record
	// and starts dense: seed is nil until a shortcut phase has run).
	var acc, seed *runtime.Bitset
	if fr != nil {
		acc = runtime.NewBitset(h.HP.NumLocal())
	}
	var workDone runtime.BoolReducer
	for {
		stats.OuterRounds++
		workDone.Set(false)
		stats.HookRounds += ccHook(h, cfg, parent, &workDone, fr, seed, rl, eng, de)
		stats.ShortcutRounds += ccShortcut(h, cfg, parent, fr, acc, rl, eng)
		seed = acc
		workDone.Sync(h.EP)
		if !workDone.Read() || stats.OuterRounds >= cfg.maxRounds() {
			break
		}
	}
	CollectNodeValues(h, parent, out)
	cfg.recordStats(parent)
	return stats
}

// ccHook applies the hook operator until quiescence: for every edge
// src->dst with parent(src) > parent(dst), min-reduce parent(parent(src))
// by parent(dst). Reads touch only the active node and its neighbors, so
// the compiler pins mirrors and elides requests (§5.2); the reduce target
// parent(src) is an arbitrary node (trans-vertex).
//
// With a frontier, only proxies whose parent changed last round are
// visited, and the hook is applied in *both* directions of each stored
// edge: when parent(dst) changes, the host storing src->dst may hold dst
// only as a mirror with no out-edges, so the re-examination of that edge
// must happen from dst's side wherever the symmetrized counterpart lives —
// iterating every activated proxy and hooking both ways covers every edge
// incident to a changed node. The reverse direction is skipped when dst is
// itself active: activation is consistent across every host holding a
// proxy (the same sync delivers the change everywhere), so an active dst
// is visited wherever the symmetrized edge dst->src lives and its forward
// hook covers that side — skipping keeps the frontier run's reduces a
// subset of the dense run's (a full frontier degenerates to exactly the
// dense loop) instead of doubling edge work when both endpoints changed.
// The extra direction is a no-op for the dense loop's fixpoint (min-reduce
// is idempotent), so labels stay identical.
// Under a non-BSP engine, a round's compute phase may instead drain the
// frontier asynchronously (see ccHookDrain): CAS in-place applies and
// immediate re-enqueue collapse local hook cascades within the round,
// while the per-round collective sequence (ReduceSync, BroadcastSync,
// IsUpdated) is identical in both modes, so hosts running different modes
// still meet at the same syncs.
//
// Under a direction engine, a dense round may run bottom-up instead
// (pullMinRound): the SV hook's reduce target parent(src) is an arbitrary
// node and cannot be pulled, so pull rounds use the label-propagation
// formulation — each master min-folds its in-neighbors' labels into
// itself. Both formulations monotonically lower labels toward the same
// unique min-ID fixpoint (generators symmetrize, so in-neighbors cover
// every incident edge), and the interleaved shortcut phases collapse the
// parent chains either way: converged labels are bit-identical, though
// round counts may differ. A pull round skips ReduceSync entirely and
// the direction choice is global (see direction.go), so hosts still
// agree on every round's collective sequence.
func ccHook(h *runtime.Host, cfg Config, parent npm.Map[graph.NodeID],
	workDone *runtime.BoolReducer, fr *runtime.Frontier, seed *runtime.Bitset,
	rl *roundLogger, eng *engine, de *dirEngine) int {

	// Reset before pinning: PinMirrors refreshes mirrors from masters and
	// activates every mirror whose value changed since the last unpin, and
	// those activations must land in the next set the seed joins.
	if fr != nil {
		fr.Reset()
	}
	parent.PinMirrors()
	if fr != nil {
		if seed != nil {
			// Masters the preceding shortcut phase changed; together with
			// the pin-time mirror activations this covers every proxy whose
			// parent moved since the last hook round.
			fr.ActivateSet(seed)
			seed.Clear()
		} else {
			// First hook phase: no prior change record, start dense.
			fr.ActivateAll()
		}
		fr.Advance()
	}
	rounds := 0
	for {
		rounds++
		parent.ResetUpdated()
		if cfg.requestActive() {
			requestLocalProxies(h, parent)
		}
		local := h.HP.Local
		mode := runtime.ModeBSP
		var drain runtime.DrainStats
		if fr != nil {
			mode = eng.roundMode(fr.Count())
		}
		dir := de.roundDirection(fr)
		switch {
		case dir == runtime.DirPull:
			// Bottom-up: dense master scan over the in-edge CSR, plain
			// stores into own slots, no reduce collective this round.
			h.TimeCompute(func() {
				pullMinRound(h, de.ph, workDone)
			})
		case mode == runtime.ModeAsync:
			h.TimeCompute(func() {
				drain = ccHookDrain(h, eng, workDone, fr)
			})
			parent.ReduceSync()
		default:
			body := func(tid int, src graph.NodeID) {
				srcParent := parent.Read(h.HP.GlobalID(src))
				lo, hi := local.EdgeRange(src)
				for e := lo; e < hi; e++ {
					dst := local.Dst(e)
					dstParent := parent.Read(h.HP.GlobalID(dst))
					// Parent values are original IDs; the reduce target is
					// the parent *node*, so translate to its current ID
					// before addressing it (identity without reordering).
					if srcParent > dstParent {
						workDone.Reduce(true)
						parent.Reduce(tid, h.HP.CurrentID(srcParent), dstParent)
					} else if fr != nil && dstParent > srcParent && !fr.IsActive(int(dst)) {
						workDone.Reduce(true)
						parent.Reduce(tid, h.HP.CurrentID(dstParent), srcParent)
					}
				}
			}
			h.TimeCompute(func() {
				if fr != nil {
					h.ParForActive(fr, body)
				} else {
					h.ParForNodes(body)
				}
			})
			parent.ReduceSync()
		}
		// A pull round never staged a reduce — each push arm synced its own
		// above — so every direction ends the round with the broadcast.
		parent.BroadcastSync()
		active := h.HP.NumLocal()
		if fr != nil {
			active = fr.Count()
			eng.observe(mode, active, fr.Size(), drain)
			fr.Advance()
		}
		rl.record(active, true, mode, dir)
		if !parent.IsUpdated() || rounds >= cfg.maxRounds() {
			break
		}
	}
	parent.UnpinMirrors()
	return rounds
}

// ccHookDrain is ccHook's compute phase as an asynchronous drain: reads
// and reduces go through the CAS handle (local targets apply in place;
// remote ones still buffer for the next reduce-sync), and a target whose
// parent changed is activated for the next round — the in-place apply
// means the next round reads it without waiting for a reduce/broadcast
// round-trip. Changed targets are deliberately NOT re-enqueued in-drain:
// hook cascades lower labels one hop at a time, so running them to
// quiescence before any shortcut phase degenerates to O(n^2) on deep
// chains — exactly the workload where BSP's interleaved pointer jumping
// stays O(n log n). The chain-collapsing win belongs to the shortcut
// drain (ccChaseBody), which compresses with path halving.
//
// One deliberate difference from the BSP body: BSP skips the
// reverse-direction hook when dst is itself active, because dst's own
// visit covers that edge with the same round-start values. Mid-drain that
// argument breaks — dst's body may have run before parent(src) dropped —
// so the drain applies both directions unconditionally (idempotent min
// applies; the redundancy is harmless).
// Unmaterialized reads (ok=false) cannot occur here: mirrors are pinned
// for the whole hook phase, and every edge endpoint is a local proxy.
func ccHookDrain(h *runtime.Host, eng *engine, workDone *runtime.BoolReducer,
	fr *runtime.Frontier) runtime.DrainStats {

	local := h.HP.Local
	ah := eng.ah
	return h.AsyncDrain(fr, eng.ccAsyncOpts(), func(tid int, src graph.NodeID, _ *runtime.AsyncCtx) {
		srcParent, ok := ah.Load(h.HP.GlobalID(src))
		if !ok {
			return
		}
		lo, hi := local.EdgeRange(src)
		for e := lo; e < hi; e++ {
			dst := local.Dst(e)
			dstParent, ok := ah.Load(h.HP.GlobalID(dst))
			if !ok {
				continue
			}
			if srcParent > dstParent {
				workDone.Reduce(true)
				if l, applied, changed := ah.ReduceAsync(tid, h.HP.CurrentID(srcParent), dstParent); applied && changed {
					fr.Activate(int(l))
				}
			} else if dstParent > srcParent {
				workDone.Reduce(true)
				if l, applied, changed := ah.ReduceAsync(tid, h.HP.CurrentID(dstParent), srcParent); applied && changed {
					fr.Activate(int(l))
				}
			}
		}
	})
}

// ccShortcut applies pointer jumping until quiescence:
// parent(n) <- parent(parent(n)). The grandparent read targets an
// arbitrary node, so each round requests it explicitly (the Figure 8
// generated code); the compiler's master-elision restricts iteration to
// master nodes.
//
// The frontier starts with every master (the preceding phase changed
// parents untracked) and then narrows to masters whose parent changed:
// once a master points at a root its shortcut stays ineffective — roots
// keep pointing at themselves within the phase — until its own parent
// changes again, which re-activates it.
// Under a non-BSP engine, an async round replaces the request/jump passes
// with two drains around the same RequestSync: a chase drain that
// collapses every locally-readable parent chain in place (requesting the
// parents it cannot read), then a resolve drain over the requesters that
// jumps through the fresh cache. One async round does the work of a whole
// local chain of BSP rounds; cross-host chains still advance one request
// round at a time, exactly like BSP.
func ccShortcut(h *runtime.Host, cfg Config, parent npm.Map[graph.NodeID],
	fr *runtime.Frontier, acc *runtime.Bitset, rl *roundLogger, eng *engine) int {

	if fr != nil {
		// Reset discards stale activations (e.g. mirror bits from a prior
		// broadcast); shortcut iterates masters only.
		fr.Reset()
		fr.ActivateRange(0, h.HP.NumMasters)
		fr.Advance()
	}
	rounds := 0
	for {
		rounds++
		parent.ResetUpdated()
		if cfg.requestActive() {
			requestLocalProxies(h, parent)
		}
		mode := runtime.ModeBSP
		var drain runtime.DrainStats
		if fr != nil {
			mode = eng.roundMode(fr.Count())
		}
		if mode == runtime.ModeAsync {
			pend := eng.pendSet()
			h.TimeCompute(func() {
				drain = h.AsyncDrain(fr, eng.ccAsyncOpts(), ccChaseBody(h, eng, parent, fr, pend, true))
			})
			parent.RequestSync()
			h.TimeCompute(func() {
				resolved := h.AsyncDrainBits(pend, eng.ccAsyncOpts(), ccChaseBody(h, eng, parent, fr, pend, false))
				drain.Accumulate(resolved)
			})
		} else {
			// Request phase generated by the operator split: read parent(n),
			// request parent(parent(n)).
			reqBody := func(_ int, local graph.NodeID) {
				p := parent.Read(h.HP.GlobalID(local))
				parent.Request(h.HP.CurrentID(p))
			}
			h.TimeCompute(func() {
				if fr != nil {
					h.ParForActive(fr, reqBody)
				} else {
					h.ParForMasters(reqBody)
				}
			})
			parent.RequestSync()
			body := func(tid int, local graph.NodeID) {
				gid := h.HP.GlobalID(local)
				p := parent.Read(gid)
				gp := parent.Read(h.HP.CurrentID(p))
				if p != gp {
					parent.Reduce(tid, gid, gp)
				}
			}
			h.TimeCompute(func() {
				if fr != nil {
					h.ParForActive(fr, body)
				} else {
					h.ParForMasters(body)
				}
			})
		}
		parent.ReduceSync()
		active := h.HP.NumMasters
		if fr != nil {
			active = fr.Count()
			eng.observe(mode, active, fr.Size(), drain)
			fr.Advance()
			if acc != nil {
				// Record this round's changed masters for the next hook
				// phase's seed (see CCSV).
				fr.OrCurrentInto(acc)
			}
		}
		rl.record(active, false, mode, runtime.DirPush)
		if !parent.IsUpdated() || rounds >= cfg.maxRounds() {
			break
		}
	}
	return rounds
}

// ccChaseBody builds the shortcut drain body: chase n's parent chain,
// CAS-lowering parent(n) as long as each grandparent is locally readable
// (master, or this round's request cache). On an unreadable parent the
// chase parks: the first drain requests it and records n in pend for the
// post-RequestSync resolve drain; the resolve drain re-activates n for
// the next BSP round instead (its parent moved past what was requested).
// Any change re-activates n — the same changed-masters activation rule
// the BSP path gets from applyToMaster, which keeps acc seeding and
// round-narrowing behavior identical across modes.
func ccChaseBody(h *runtime.Host, eng *engine, parent npm.Map[graph.NodeID],
	fr *runtime.Frontier, pend *runtime.Bitset, requestMissing bool,
) func(tid int, n graph.NodeID, cx *runtime.AsyncCtx) {

	ah := eng.ah
	return func(tid int, n graph.NodeID, _ *runtime.AsyncCtx) {
		gid := h.HP.GlobalID(n)
		changed := false
		// Walk gid's parent chain with path halving: the cursor visits
		// v -> parent(parent(v)) -> ..., and every visited node is jumped
		// past its parent to its grandparent (the classic union-find
		// compression). Each walk halves the chain it traverses, so total
		// chase work over a drain stays near-linear no matter which end of
		// a deep chain drains first. Compressing only the chasing vertex —
		// the naive loop — re-walks the same tail from every seed for
		// O(n^2) total on a chain, the exact workload the async mode
		// exists to win.
		miss := func(x graph.NodeID) {
			if requestMissing {
				parent.Request(x)
				pend.Set(int(n))
			} else {
				fr.Activate(int(n))
			}
		}
		// The cursor is an (address, original-ID) pair: parent *values* live
		// in original-ID space (see initOwn), while every Load/ReduceAsync
		// target must be a current (reordered) node ID. Without reordering
		// the two coincide and this is the plain single-cursor walk.
		vAddr := gid
		vOrig := h.HP.OriginalID(gid)
		var root graph.NodeID // original-ID-space label
		haveRoot := false
		for {
			p, ok := ah.Load(vAddr) // vAddr=gid is our master, always readable; deeper nodes may not be
			if !ok {
				miss(vAddr)
				break
			}
			if p == vOrig {
				root, haveRoot = p, true
				break
			}
			pAddr := h.HP.CurrentID(p)
			gp, ok := ah.Load(pAddr)
			if !ok {
				miss(pAddr)
				break
			}
			if gp == p {
				root, haveRoot = gp, true // parent is a root; v already points at it
				break
			}
			// Jump v past p. Local targets apply via CAS (activating the
			// changed master, the BSP rule: a parent that moved re-examines
			// next round); remote targets buffer for the next reduce-sync.
			if lv, applied, ch := ah.ReduceAsync(tid, vAddr, gp); applied && ch {
				fr.Activate(int(lv))
			}
			vAddr, vOrig = h.HP.CurrentID(gp), gp
		}
		// The walk halves the chain but only moves gid one jump; finish by
		// pulling gid all the way to the terminal root so one drain fully
		// collapses the chase, like the BSP loop's repeated rounds would.
		if haveRoot {
			if _, _, ch := ah.ReduceAsync(tid, gid, root); ch {
				changed = true
			}
		}
		if changed {
			fr.Activate(int(n))
		}
	}
}

// CCLP runs label-propagation connected components (SPMD): each round
// every node pushes its label to its neighbors with a min reduction. A
// pure adjacent-vertex program — mirrors stay pinned and no requests are
// ever needed, matching Gluon's execution. With a frontier only proxies
// whose label shrank last round push: a push from src can only become
// effective after label(src) itself shrinks (neighbor labels only ever
// decrease, which never enables src's push), so label-change activation
// covers every effective push.
func CCLP(h *runtime.Host, cfg Config, out []graph.NodeID) CCStats {
	comp := cfg.newNodeMap(h, npm.MinNodeID())
	initOwn(h, comp)

	var stats CCStats
	fr := cfg.newFrontier(h, comp)
	rl := cfg.roundLogger(h, &stats.PerRound)
	de := cfg.newDirEngine(h, comp, false)
	eng := cfg.newEngine(h, fr, comp)
	if de != nil {
		eng = nil // direction-capable phases run BSP rounds (see CCSV)
	}
	comp.PinMirrors()
	if fr != nil {
		fr.ActivateAll()
		fr.Advance()
	}
	for {
		stats.HookRounds++
		comp.ResetUpdated()
		if cfg.requestActive() {
			requestLocalProxies(h, comp)
		}
		local := h.HP.Local
		mode := runtime.ModeBSP
		var drain runtime.DrainStats
		if fr != nil {
			mode = eng.roundMode(fr.Count())
		}
		dir := de.roundDirection(fr)
		switch {
		case dir == runtime.DirPull:
			// Bottom-up label propagation: each master min-folds its
			// in-neighbors' round-start labels (the exact transpose of the
			// push body on these symmetrized graphs), with no reduce
			// collective — per-round label states, and therefore round
			// counts, are identical to push.
			h.TimeCompute(func() {
				pullMinRound(h, de.ph, nil)
			})
		case mode == runtime.ModeAsync:
			// Every push target is a local proxy (mirrors are pinned), so
			// the whole label cascade applies in place: a drain runs each
			// host's labels to their local fixpoint in one round.
			ah := eng.ah
			h.TimeCompute(func() {
				drain = h.AsyncDrain(fr, eng.ccAsyncOpts(), func(tid int, src graph.NodeID, cx *runtime.AsyncCtx) {
					label, ok := ah.Load(h.HP.GlobalID(src))
					if !ok {
						return
					}
					lo, hi := local.EdgeRange(src)
					for e := lo; e < hi; e++ {
						dstGID := h.HP.GlobalID(local.Dst(e))
						if l, applied, changed := ah.ReduceAsync(tid, dstGID, label); applied && changed {
							cx.Enqueue(l)
						}
					}
				})
			})
			comp.ReduceSync()
		default:
			body := func(tid int, src graph.NodeID) {
				label := comp.Read(h.HP.GlobalID(src))
				lo, hi := local.EdgeRange(src)
				for e := lo; e < hi; e++ {
					dstGID := h.HP.GlobalID(local.Dst(e))
					if label < comp.Read(dstGID) {
						comp.Reduce(tid, dstGID, label)
					}
				}
			}
			h.TimeCompute(func() {
				if fr != nil {
					h.ParForActive(fr, body)
				} else {
					h.ParForNodes(body)
				}
			})
			comp.ReduceSync()
		}
		// A pull round never staged a reduce — each push arm synced its own
		// above — so every direction ends the round with the broadcast.
		comp.BroadcastSync()
		active := h.HP.NumLocal()
		if fr != nil {
			active = fr.Count()
			eng.observe(mode, active, fr.Size(), drain)
			fr.Advance()
		}
		rl.record(active, true, mode, dir)
		if !comp.IsUpdated() || stats.HookRounds >= cfg.maxRounds() {
			break
		}
	}
	comp.UnpinMirrors()
	stats.OuterRounds = 1
	CollectNodeValues(h, comp, out)
	cfg.recordStats(comp)
	return stats
}

// CCSCLP runs shortcutting label propagation (Stergiou et al.): label
// propagation rounds interleaved with pointer-jumping shortcut rounds.
// Propagation is adjacent-vertex; the shortcut is trans-vertex. Each outer
// round runs exactly one full propagation pass, so only the shortcut
// phases are frontier-driven.
func CCSCLP(h *runtime.Host, cfg Config, out []graph.NodeID) CCStats {
	comp := cfg.newNodeMap(h, npm.MinNodeID())
	initOwn(h, comp)

	var stats CCStats
	fr := cfg.newFrontier(h, comp)
	rl := cfg.roundLogger(h, &stats.PerRound)
	eng := cfg.newEngine(h, fr, comp)
	for {
		stats.OuterRounds++
		var workDone runtime.BoolReducer
		workDone.Set(false)

		// One label-propagation pass.
		comp.PinMirrors()
		comp.ResetUpdated()
		if cfg.requestActive() {
			requestLocalProxies(h, comp)
		}
		h.TimeCompute(func() {
			local := h.HP.Local
			h.ParForNodes(func(tid int, src graph.NodeID) {
				label := comp.Read(h.HP.GlobalID(src))
				lo, hi := local.EdgeRange(src)
				for e := lo; e < hi; e++ {
					dstGID := h.HP.GlobalID(local.Dst(e))
					if label < comp.Read(dstGID) {
						workDone.Reduce(true)
						comp.Reduce(tid, dstGID, label)
					}
				}
			})
		})
		comp.ReduceSync()
		comp.BroadcastSync()
		if comp.IsUpdated() {
			workDone.Reduce(true)
		}
		comp.UnpinMirrors()
		stats.HookRounds++
		rl.record(h.HP.NumLocal(), true, runtime.ModeBSP, runtime.DirPush)

		// Shortcut to collapse label chains.
		stats.ShortcutRounds += ccShortcut(h, cfg, comp, fr, nil, rl, eng)

		workDone.Sync(h.EP)
		if !workDone.Read() || stats.OuterRounds >= cfg.maxRounds() {
			break
		}
	}
	CollectNodeValues(h, comp, out)
	cfg.recordStats(comp)
	return stats
}
