package algorithms

import (
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

// The three connected-components algorithms from the paper (§6.1):
// CC-SV (Shiloach-Vishkin, trans-vertex), CC-LP (label propagation,
// adjacent-vertex), and CC-SCLP (shortcutting label propagation, both).
// All label every node with the smallest node ID in its component.
//
// CC-SV and CC-LP run frontier-driven by default on the Full variant (see
// DESIGN.md §10): the property map activates every local proxy whose value
// changes during a sync phase, and the next round iterates only the active
// set. Late rounds — where <1% of vertices still change — then cost
// O(active) instead of O(|V|). Config.Dense restores the dense loops; the
// labels are identical either way (the min-label fixpoint does not depend
// on evaluation order).

// CCStats reports per-run counters.
type CCStats struct {
	HookRounds     int // hook (or propagate) BSP rounds
	ShortcutRounds int
	OuterRounds    int
	// PerRound is filled under Config.LogRounds, one entry per BSP round in
	// execution order (hook rounds, then shortcut rounds, per outer round).
	PerRound RoundStats
}

// CCSV runs Shiloach-Vishkin connected components on one host (SPMD).
// It is the hand-written equivalent of the compiler output in Figure 8.
// After it returns, out (length = global node count) holds this host's
// master labels.
func CCSV(h *runtime.Host, cfg Config, out []graph.NodeID) CCStats {
	parent := cfg.newNodeMap(h, npm.MinNodeID())
	initOwn(h, parent)

	var stats CCStats
	fr := cfg.newFrontier(h, parent)
	rl := cfg.roundLogger(h, &stats.PerRound)
	// acc accumulates every proxy the shortcut phase changes, so the next
	// outer round's hook phase can start from the changed set instead of a
	// full re-activation (the first hook phase has no prior change record
	// and starts dense: seed is nil until a shortcut phase has run).
	var acc, seed *runtime.Bitset
	if fr != nil {
		acc = runtime.NewBitset(h.HP.NumLocal())
	}
	var workDone runtime.BoolReducer
	for {
		stats.OuterRounds++
		workDone.Set(false)
		stats.HookRounds += ccHook(h, cfg, parent, &workDone, fr, seed, rl)
		stats.ShortcutRounds += ccShortcut(h, cfg, parent, fr, acc, rl)
		seed = acc
		workDone.Sync(h.EP)
		if !workDone.Read() || stats.OuterRounds >= cfg.maxRounds() {
			break
		}
	}
	CollectNodeValues(h, parent, out)
	cfg.recordStats(parent)
	return stats
}

// ccHook applies the hook operator until quiescence: for every edge
// src->dst with parent(src) > parent(dst), min-reduce parent(parent(src))
// by parent(dst). Reads touch only the active node and its neighbors, so
// the compiler pins mirrors and elides requests (§5.2); the reduce target
// parent(src) is an arbitrary node (trans-vertex).
//
// With a frontier, only proxies whose parent changed last round are
// visited, and the hook is applied in *both* directions of each stored
// edge: when parent(dst) changes, the host storing src->dst may hold dst
// only as a mirror with no out-edges, so the re-examination of that edge
// must happen from dst's side wherever the symmetrized counterpart lives —
// iterating every activated proxy and hooking both ways covers every edge
// incident to a changed node. The reverse direction is skipped when dst is
// itself active: activation is consistent across every host holding a
// proxy (the same sync delivers the change everywhere), so an active dst
// is visited wherever the symmetrized edge dst->src lives and its forward
// hook covers that side — skipping keeps the frontier run's reduces a
// subset of the dense run's (a full frontier degenerates to exactly the
// dense loop) instead of doubling edge work when both endpoints changed.
// The extra direction is a no-op for the dense loop's fixpoint (min-reduce
// is idempotent), so labels stay identical.
func ccHook(h *runtime.Host, cfg Config, parent npm.Map[graph.NodeID],
	workDone *runtime.BoolReducer, fr *runtime.Frontier, seed *runtime.Bitset,
	rl *roundLogger) int {

	// Reset before pinning: PinMirrors refreshes mirrors from masters and
	// activates every mirror whose value changed since the last unpin, and
	// those activations must land in the next set the seed joins.
	if fr != nil {
		fr.Reset()
	}
	parent.PinMirrors()
	if fr != nil {
		if seed != nil {
			// Masters the preceding shortcut phase changed; together with
			// the pin-time mirror activations this covers every proxy whose
			// parent moved since the last hook round.
			fr.ActivateSet(seed)
			seed.Clear()
		} else {
			// First hook phase: no prior change record, start dense.
			fr.ActivateAll()
		}
		fr.Advance()
	}
	rounds := 0
	for {
		rounds++
		parent.ResetUpdated()
		if cfg.requestActive() {
			requestLocalProxies(h, parent)
		}
		local := h.HP.Local
		body := func(tid int, src graph.NodeID) {
			srcParent := parent.Read(h.HP.GlobalID(src))
			lo, hi := local.EdgeRange(src)
			for e := lo; e < hi; e++ {
				dst := local.Dst(e)
				dstParent := parent.Read(h.HP.GlobalID(dst))
				if srcParent > dstParent {
					workDone.Reduce(true)
					parent.Reduce(tid, srcParent, dstParent)
				} else if fr != nil && dstParent > srcParent && !fr.IsActive(int(dst)) {
					workDone.Reduce(true)
					parent.Reduce(tid, dstParent, srcParent)
				}
			}
		}
		h.TimeCompute(func() {
			if fr != nil {
				h.ParForActive(fr, body)
			} else {
				h.ParForNodes(body)
			}
		})
		parent.ReduceSync()
		parent.BroadcastSync()
		active := h.HP.NumLocal()
		if fr != nil {
			active = fr.Count()
			fr.Advance()
		}
		rl.record(active, true)
		if !parent.IsUpdated() || rounds >= cfg.maxRounds() {
			break
		}
	}
	parent.UnpinMirrors()
	return rounds
}

// ccShortcut applies pointer jumping until quiescence:
// parent(n) <- parent(parent(n)). The grandparent read targets an
// arbitrary node, so each round requests it explicitly (the Figure 8
// generated code); the compiler's master-elision restricts iteration to
// master nodes.
//
// The frontier starts with every master (the preceding phase changed
// parents untracked) and then narrows to masters whose parent changed:
// once a master points at a root its shortcut stays ineffective — roots
// keep pointing at themselves within the phase — until its own parent
// changes again, which re-activates it.
func ccShortcut(h *runtime.Host, cfg Config, parent npm.Map[graph.NodeID],
	fr *runtime.Frontier, acc *runtime.Bitset, rl *roundLogger) int {

	if fr != nil {
		// Reset discards stale activations (e.g. mirror bits from a prior
		// broadcast); shortcut iterates masters only.
		fr.Reset()
		fr.ActivateRange(0, h.HP.NumMasters)
		fr.Advance()
	}
	rounds := 0
	for {
		rounds++
		parent.ResetUpdated()
		if cfg.requestActive() {
			requestLocalProxies(h, parent)
		}
		// Request phase generated by the operator split: read parent(n),
		// request parent(parent(n)).
		reqBody := func(_ int, local graph.NodeID) {
			p := parent.Read(h.HP.GlobalID(local))
			parent.Request(p)
		}
		h.TimeCompute(func() {
			if fr != nil {
				h.ParForActive(fr, reqBody)
			} else {
				h.ParForMasters(reqBody)
			}
		})
		parent.RequestSync()
		body := func(tid int, local graph.NodeID) {
			gid := h.HP.GlobalID(local)
			p := parent.Read(gid)
			gp := parent.Read(p)
			if p != gp {
				parent.Reduce(tid, gid, gp)
			}
		}
		h.TimeCompute(func() {
			if fr != nil {
				h.ParForActive(fr, body)
			} else {
				h.ParForMasters(body)
			}
		})
		parent.ReduceSync()
		active := h.HP.NumMasters
		if fr != nil {
			active = fr.Count()
			fr.Advance()
			if acc != nil {
				// Record this round's changed masters for the next hook
				// phase's seed (see CCSV).
				fr.OrCurrentInto(acc)
			}
		}
		rl.record(active, false)
		if !parent.IsUpdated() || rounds >= cfg.maxRounds() {
			break
		}
	}
	return rounds
}

// CCLP runs label-propagation connected components (SPMD): each round
// every node pushes its label to its neighbors with a min reduction. A
// pure adjacent-vertex program — mirrors stay pinned and no requests are
// ever needed, matching Gluon's execution. With a frontier only proxies
// whose label shrank last round push: a push from src can only become
// effective after label(src) itself shrinks (neighbor labels only ever
// decrease, which never enables src's push), so label-change activation
// covers every effective push.
func CCLP(h *runtime.Host, cfg Config, out []graph.NodeID) CCStats {
	comp := cfg.newNodeMap(h, npm.MinNodeID())
	initOwn(h, comp)

	var stats CCStats
	fr := cfg.newFrontier(h, comp)
	rl := cfg.roundLogger(h, &stats.PerRound)
	comp.PinMirrors()
	if fr != nil {
		fr.ActivateAll()
		fr.Advance()
	}
	for {
		stats.HookRounds++
		comp.ResetUpdated()
		if cfg.requestActive() {
			requestLocalProxies(h, comp)
		}
		local := h.HP.Local
		body := func(tid int, src graph.NodeID) {
			label := comp.Read(h.HP.GlobalID(src))
			lo, hi := local.EdgeRange(src)
			for e := lo; e < hi; e++ {
				dstGID := h.HP.GlobalID(local.Dst(e))
				if label < comp.Read(dstGID) {
					comp.Reduce(tid, dstGID, label)
				}
			}
		}
		h.TimeCompute(func() {
			if fr != nil {
				h.ParForActive(fr, body)
			} else {
				h.ParForNodes(body)
			}
		})
		comp.ReduceSync()
		comp.BroadcastSync()
		active := h.HP.NumLocal()
		if fr != nil {
			active = fr.Count()
			fr.Advance()
		}
		rl.record(active, true)
		if !comp.IsUpdated() || stats.HookRounds >= cfg.maxRounds() {
			break
		}
	}
	comp.UnpinMirrors()
	stats.OuterRounds = 1
	CollectNodeValues(h, comp, out)
	cfg.recordStats(comp)
	return stats
}

// CCSCLP runs shortcutting label propagation (Stergiou et al.): label
// propagation rounds interleaved with pointer-jumping shortcut rounds.
// Propagation is adjacent-vertex; the shortcut is trans-vertex. Each outer
// round runs exactly one full propagation pass, so only the shortcut
// phases are frontier-driven.
func CCSCLP(h *runtime.Host, cfg Config, out []graph.NodeID) CCStats {
	comp := cfg.newNodeMap(h, npm.MinNodeID())
	initOwn(h, comp)

	var stats CCStats
	fr := cfg.newFrontier(h, comp)
	rl := cfg.roundLogger(h, &stats.PerRound)
	for {
		stats.OuterRounds++
		var workDone runtime.BoolReducer
		workDone.Set(false)

		// One label-propagation pass.
		comp.PinMirrors()
		comp.ResetUpdated()
		if cfg.requestActive() {
			requestLocalProxies(h, comp)
		}
		h.TimeCompute(func() {
			local := h.HP.Local
			h.ParForNodes(func(tid int, src graph.NodeID) {
				label := comp.Read(h.HP.GlobalID(src))
				lo, hi := local.EdgeRange(src)
				for e := lo; e < hi; e++ {
					dstGID := h.HP.GlobalID(local.Dst(e))
					if label < comp.Read(dstGID) {
						workDone.Reduce(true)
						comp.Reduce(tid, dstGID, label)
					}
				}
			})
		})
		comp.ReduceSync()
		comp.BroadcastSync()
		if comp.IsUpdated() {
			workDone.Reduce(true)
		}
		comp.UnpinMirrors()
		stats.HookRounds++
		rl.record(h.HP.NumLocal(), true)

		// Shortcut to collapse label chains.
		stats.ShortcutRounds += ccShortcut(h, cfg, comp, fr, nil, rl)

		workDone.Sync(h.EP)
		if !workDone.Read() || stats.OuterRounds >= cfg.maxRounds() {
			break
		}
	}
	CollectNodeValues(h, comp, out)
	cfg.recordStats(comp)
	return stats
}
