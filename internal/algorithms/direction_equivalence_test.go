package algorithms

import (
	"testing"

	"kimbap/internal/comm"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// Direction equivalence: pull rounds are a pure execution-strategy change
// — same fixpoint, same collected labels — so every direction must match
// the push run bit for bit across the full execution matrix. Pull is only
// legal under pull-complete partitions (IEC, or one host), so IEC is the
// matrix policy; the OEC/CVC runs below pin the silent fall-back to push
// instead.

func runCCDir(t *testing.T, g *graph.Graph, rc runtime.Config, acfg Config,
	algo func(h *runtime.Host, cfg Config, out []graph.NodeID) CCStats) ([]graph.NodeID, CCStats) {
	t.Helper()
	c, err := runtime.NewCluster(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]graph.NodeID, g.NumNodes())
	var stats CCStats
	c.Run(func(h *runtime.Host) {
		s := algo(h, acfg, out)
		if h.Rank == 0 {
			stats = s
		}
	})
	return out, stats
}

// TestDirectionEquivalenceCCSVFullMatrix pins CC-SV labels across
// {push, pull, adaptive} × {dense, sparse} × {v1, v2} × {in-memory, TCP}
// × {2, 4, 8} hosts on an IEC partition. The v2 runs' reduce payloads use
// the v2s frames, so all three wire forms are exercised.
func TestDirectionEquivalenceCCSVFullMatrix(t *testing.T) {
	g := gen.RMAT(8, 6, false, 2)
	want := graph.ReferenceComponents(g)
	for _, tcp := range []bool{false, true} {
		for _, wire := range []comm.WireFormat{comm.WireV1, comm.WireV2} {
			for _, dense := range []bool{false, true} {
				for _, hosts := range []int{2, 4, 8} {
					rc := runtime.Config{
						NumHosts: hosts, ThreadsPerHost: 3, Policy: partition.IEC,
						UseTCP: tcp, Wire: wire,
					}
					base, _ := runCCDir(t, g, rc, Config{Dense: dense}, CCSV)
					for i := range base {
						if base[i] != want[i] {
							t.Fatalf("tcp=%v/wire=%d/dense=%v/%dh: push node %d labeled %d, reference %d",
								tcp, wire, dense, hosts, i, base[i], want[i])
						}
					}
					for _, dir := range []Direction{DirPull, DirAdaptive} {
						got, _ := runCCDir(t, g, rc, Config{Dense: dense, Direction: dir}, CCSV)
						for i := range base {
							if got[i] != base[i] {
								t.Fatalf("tcp=%v/wire=%d/dense=%v/%dh/%s: node %d labeled %d, push labeled %d",
									tcp, wire, dense, hosts, dir, i, got[i], base[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestDirectionEquivalenceCCLP additionally pins CC-LP's round count:
// its pull round is the exact transpose of its push round, so per-round
// states — not just converged labels — coincide.
func TestDirectionEquivalenceCCLP(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":  gen.RMAT(9, 6, false, 42),
		"grid":  gen.Grid(16, 16, false, 7),
		"chain": gen.Chain(120, false, 3),
	}
	for gname, g := range graphs {
		for _, hosts := range []int{1, 2, 4, 8} {
			rc := runtime.Config{NumHosts: hosts, ThreadsPerHost: 3, Policy: partition.IEC}
			base, baseStats := runCCDir(t, g, rc, Config{}, CCLP)
			for _, dir := range []Direction{DirPull, DirAdaptive} {
				got, stats := runCCDir(t, g, rc, Config{Direction: dir}, CCLP)
				for i := range base {
					if got[i] != base[i] {
						t.Fatalf("%s/%dh/%s: node %d labeled %d, push labeled %d",
							gname, hosts, dir, i, got[i], base[i])
					}
				}
				if stats.HookRounds != baseStats.HookRounds {
					t.Fatalf("%s/%dh/%s: %d rounds, push took %d",
						gname, hosts, dir, stats.HookRounds, baseStats.HookRounds)
				}
			}
		}
	}
}

// TestDirectionEquivalenceMIS: the selected set — and the round count,
// since per-round decisions coincide — must match push exactly.
func TestDirectionEquivalenceMIS(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat": gen.RMAT(8, 6, false, 2),
		"grid": gen.Grid(12, 12, false, 7),
		"star": gen.Star(60),
	}
	for gname, g := range graphs {
		for _, hosts := range []int{1, 2, 4} {
			rc := runtime.Config{NumHosts: hosts, ThreadsPerHost: 3, Policy: partition.IEC}
			var base []bool
			var baseStats MISStats
			for _, dir := range []Direction{DirPush, DirPull, DirAdaptive} {
				c, err := runtime.NewCluster(g, rc)
				if err != nil {
					t.Fatal(err)
				}
				out := make([]bool, g.NumNodes())
				var stats MISStats
				c.Run(func(h *runtime.Host) {
					s := MIS(h, Config{Direction: dir}, out)
					if h.Rank == 0 {
						stats = s
					}
				})
				c.Close()
				if !graph.IsValidMIS(g, out) {
					t.Fatalf("%s/%dh/%s: invalid MIS", gname, hosts, dir)
				}
				if base == nil {
					base, baseStats = out, stats
					continue
				}
				for i := range base {
					if out[i] != base[i] {
						t.Fatalf("%s/%dh/%s: membership of node %d = %v, push %v",
							gname, hosts, dir, i, out[i], base[i])
					}
				}
				if stats.Rounds != baseStats.Rounds || stats.Size != baseStats.Size {
					t.Fatalf("%s/%dh/%s: rounds/size = %d/%d, push %d/%d",
						gname, hosts, dir, stats.Rounds, stats.Size,
						baseStats.Rounds, baseStats.Size)
				}
			}
		}
	}
}

// TestDirectionFallsBackWithoutPullCompleteness: on OEC/CVC multi-host
// partitions masters' in-edges live on other hosts, so pull is illegal;
// DirPull must silently run push rounds (the trace shows it) and still
// converge to the reference labels. One-host runs of the same policies
// are vacuously pull-complete and must pull.
func TestDirectionFallsBackWithoutPullCompleteness(t *testing.T) {
	g := gen.Grid(10, 10, false, 1)
	want := graph.ReferenceComponents(g)
	for _, pol := range []partition.Policy{partition.OEC, partition.CVC} {
		for _, hosts := range []int{1, 4} {
			rc := runtime.Config{NumHosts: hosts, ThreadsPerHost: 3, Policy: pol}
			got, stats := runCCDir(t, g, rc, Config{Direction: DirPull, LogRounds: true}, CCLP)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s/%dh: node %d labeled %d, reference %d", pol, hosts, i, got[i], want[i])
				}
			}
			wantDir := "push"
			if hosts == 1 {
				wantDir = "pull"
			}
			for r, d := range stats.PerRound.Dir {
				if d != wantDir {
					t.Fatalf("%s/%dh: round %d ran %s, want %s", pol, hosts, r, d, wantDir)
				}
			}
		}
	}
}

// TestPullRoundsSendNoReduceBytes pins the collective-elision claim at
// the trace level: every pull round's reduce-byte delta is exactly zero,
// and a static pull CC-LP run never sends a reduce byte after init.
func TestPullRoundsSendNoReduceBytes(t *testing.T) {
	g := gen.RMAT(8, 6, false, 2)
	for _, dir := range []Direction{DirPull, DirAdaptive} {
		rc := runtime.Config{NumHosts: 4, ThreadsPerHost: 3, Policy: partition.IEC}
		_, stats := runCCDir(t, g, rc, Config{Direction: dir, LogRounds: true}, CCLP)
		pulls := 0
		for r, d := range stats.PerRound.Dir {
			if d != "pull" {
				continue
			}
			pulls++
			if b := stats.PerRound.ReduceBytes[r]; b != 0 {
				t.Fatalf("%s: pull round %d sent %d reduce bytes", dir, r, b)
			}
		}
		if pulls == 0 {
			t.Fatalf("%s: no pull rounds recorded in %v", dir, stats.PerRound.Dir)
		}
	}
}
