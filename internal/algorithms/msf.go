package algorithms

import (
	"math"

	"kimbap/internal/comm"
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

// Boruvka minimum spanning forest (Table 2: trans-vertex only). Each round
// every component selects its minimum-weight outgoing edge with a
// min-reduction onto the component root's property, roots merge pairwise,
// and pointer jumping collapses the resulting parent chains. Two
// node-property maps are used, as in the paper: the parent map and a
// per-round candidate-edge map keyed by component root.

// MinEdge is the candidate-edge property: an undirected edge in normalized
// (A < B) form with its weight. The zero value is not meaningful; use
// infEdge as the reduction identity.
type MinEdge struct {
	W    float64
	A, B graph.NodeID
}

func infEdge() MinEdge {
	return MinEdge{W: math.Inf(1), A: graph.InvalidNode, B: graph.InvalidNode}
}

// less orders edges by (weight, endpoints), a total order that makes the
// min-reduction deterministic and cycle-free (mutual minimum picks are
// always the identical edge).
func (e MinEdge) less(o MinEdge) bool {
	if e.W != o.W {
		return e.W < o.W
	}
	if e.A != o.A {
		return e.A < o.A
	}
	return e.B < o.B
}

// MinEdgeOp is the min reduction over candidate edges.
func MinEdgeOp() npm.ReduceOp[MinEdge] {
	return npm.ReduceOp[MinEdge]{
		Name: "min-edge",
		Combine: func(a, b MinEdge) MinEdge {
			if b.less(a) {
				return b
			}
			return a
		},
		Identity:    infEdge(),
		HasIdentity: true,
	}
}

// MinEdgeCodec serializes MinEdge values (16 bytes).
type MinEdgeCodec struct{}

// Append implements npm.Codec.
func (MinEdgeCodec) Append(b []byte, e MinEdge) []byte {
	b = comm.AppendFloat64(b, e.W)
	b = comm.AppendUint32(b, uint32(e.A))
	return comm.AppendUint32(b, uint32(e.B))
}

// Read implements npm.Codec.
func (MinEdgeCodec) Read(b []byte) (MinEdge, []byte) {
	var e MinEdge
	e.W, b = comm.ReadFloat64(b)
	var u uint32
	u, b = comm.ReadUint32(b)
	e.A = graph.NodeID(u)
	u, b = comm.ReadUint32(b)
	e.B = graph.NodeID(u)
	return e, b
}

// Size implements npm.Codec.
func (MinEdgeCodec) Size() int { return 16 }

// MSFStats reports the result of a Boruvka run.
type MSFStats struct {
	Rounds      int
	TotalWeight float64
	ForestEdges int64
}

// MSF computes a minimum spanning forest (SPMD). The input graph must be
// symmetric and weighted. comp (length = global node count) receives this
// host's master component labels; the forest weight is in the returned
// stats (identical on every host).
func MSF(h *runtime.Host, cfg Config, comp []graph.NodeID) MSFStats {
	// The parent map uses Overwrite, not min: each component root writes
	// only its own parent pointer when it attaches, so no union is ever
	// lost to a competing reduction (a min-reduce could overwrite one
	// union with another, counting an edge whose merge never happened).
	parent := cfg.newNodeMap(h, npm.Overwrite[graph.NodeID]())
	initOwn(h, parent)

	var stats MSFStats
	var weight runtime.SumReducer
	var edges runtime.CountReducer
	var workDone runtime.BoolReducer

	// frP drives the pointer-jumping phases via the parent map's change
	// activation. frProp is the proposer frontier, managed by the algorithm
	// itself (works on every backend): a proxy retires permanently once all
	// its local edges stay inside one component — components only merge, so
	// a retired proxy can never again propose a crossing edge.
	frP := cfg.newFrontier(h, parent)
	var frProp *runtime.Frontier
	if !cfg.Dense {
		frProp = runtime.NewFrontier(h.HP.NumLocal())
		frProp.ActivateAll()
		frProp.Advance()
	}

	for {
		stats.Rounds++
		// 1. Collapse parent chains so parents are component roots.
		ccShortcut(h, cfg, parent, frP, nil, nil, nil)

		// 2. Fresh candidate map, masters initialized to the identity.
		cand := npm.New(npm.Options[MinEdge]{
			Host: h, Op: MinEdgeOp(), Codec: MinEdgeCodec{},
			Variant: cfg.Variant, Store: cfg.Store,
		})
		h.ParForMasters(func(_ int, local graph.NodeID) {
			cand.Set(h.HP.GlobalID(local), infEdge())
		})
		cand.InitSync()

		// 3. Candidate selection: every node proposes its cheapest edge
		// that leaves its component, reduced onto the component root
		// (an arbitrary node: trans-vertex).
		parent.PinMirrors()
		if cfg.requestActive() {
			requestLocalProxies(h, parent)
		}
		local := h.HP.Local
		propBody := func(tid int, n graph.NodeID) {
			gid := h.HP.GlobalID(n)
			rs := parent.Read(gid)
			crossing := false
			lo, hi := local.EdgeRange(n)
			for e := lo; e < hi; e++ {
				dgid := h.HP.GlobalID(local.Dst(e))
				rd := parent.Read(dgid)
				if rs == rd {
					continue
				}
				crossing = true
				// Normalize endpoints in original-ID space so the edge's
				// identity — and the (weight, endpoints) total order — is
				// the same with reordering on or off; the root value rs is
				// an original ID too, so address the reduce at its current
				// ID (DESIGN.md §14).
				oa, ob := h.HP.OriginalID(gid), h.HP.OriginalID(dgid)
				edge := MinEdge{W: local.Weight(e), A: min(oa, ob), B: max(oa, ob)}
				cand.Reduce(tid, h.HP.CurrentID(rs), edge)
			}
			if crossing && frProp != nil {
				frProp.Activate(int(n))
			}
		}
		h.TimeCompute(func() {
			if frProp != nil {
				h.ParForActive(frProp, propBody)
			} else {
				h.ParForNodes(propBody)
			}
		})
		cand.ReduceSync()
		if frProp != nil {
			frProp.Advance()
		}

		// 4a. Request phase: roots need the parents of their candidate
		// edge's endpoints (arbitrary nodes).
		if cfg.requestActive() {
			requestLocalProxies(h, cand)
		}
		h.TimeCompute(func() {
			h.ParForMasters(func(_ int, local graph.NodeID) {
				c := cand.Read(h.HP.GlobalID(local))
				if !math.IsInf(c.W, 1) {
					parent.Request(h.HP.CurrentID(c.A))
					parent.Request(h.HP.CurrentID(c.B))
				}
			})
		})
		parent.RequestSync()

		// 4b. Request phase: roots need the other root's candidate to
		// de-duplicate mutually selected edges.
		h.TimeCompute(func() {
			h.ParForMasters(func(_ int, local graph.NodeID) {
				gid := h.HP.GlobalID(local)
				c := cand.Read(gid)
				if math.IsInf(c.W, 1) {
					return
				}
				ra, rb := parent.Read(h.HP.CurrentID(c.A)), parent.Read(h.HP.CurrentID(c.B))
				other := ra
				if ra == h.HP.OriginalID(gid) {
					other = rb
				}
				cand.Request(h.HP.CurrentID(other))
			})
		})
		cand.RequestSync()

		// 4c. Merge: every root attaches itself to the other endpoint's
		// root and accounts its candidate edge. Mutual picks are always
		// the identical edge (the total order on edges guarantees it);
		// the smaller root of a mutual pair stays put so the pointer
		// graph is acyclic, and the larger side accounts the edge.
		workDone.Set(false)
		h.TimeCompute(func() {
			h.ParForMasters(func(tid int, local graph.NodeID) {
				gid := h.HP.GlobalID(local)
				c := cand.Read(gid)
				if math.IsInf(c.W, 1) {
					return
				}
				// Root comparisons run in original-ID space (parent values
				// and edge endpoints both live there); map lookups translate
				// to current IDs at the access.
				og := h.HP.OriginalID(gid)
				ra, rb := parent.Read(h.HP.CurrentID(c.A)), parent.Read(h.HP.CurrentID(c.B))
				other := ra
				if ra == og {
					other = rb
				}
				if other == og {
					return // endpoints merged earlier in this round's view
				}
				if cand.Read(h.HP.CurrentID(other)) == c && og < other {
					return // smaller root of a mutual pair: stays the root
				}
				parent.Reduce(tid, gid, other) // single writer: own pointer
				workDone.Reduce(true)
				weight.Reduce(c.W)
				edges.Reduce(1)
			})
		})
		parent.ReduceSync()
		parent.UnpinMirrors()
		cfg.recordStats(cand)

		workDone.Sync(h.EP)
		if !workDone.Read() || stats.Rounds >= cfg.maxRounds() {
			break
		}
	}

	// Final collapse so labels are roots, then collect.
	ccShortcut(h, cfg, parent, frP, nil, nil, nil)
	weight.Sync(h.EP)
	edges.Sync(h.EP)
	stats.TotalWeight = weight.Read()
	stats.ForestEdges = edges.Read()
	CollectNodeValues(h, parent, comp)
	cfg.recordStats(parent)
	return stats
}
