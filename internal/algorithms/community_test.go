package algorithms

import (
	"math"
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

func communityGraph() *graph.Graph {
	return gen.Communities(6, 30, 5, 1, true, 21)
}

func TestLouvainFindsPlantedCommunities(t *testing.T) {
	g := communityGraph()
	for _, hosts := range []int{1, 2, 4} {
		res, err := Louvain(g, runtime.Config{NumHosts: hosts, ThreadsPerHost: 3},
			Config{}, CDOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Modularity < 0.4 {
			t.Fatalf("%d hosts: modularity %.3f, want > 0.4", hosts, res.Modularity)
		}
		if res.Levels == 0 || res.Rounds == 0 {
			t.Fatalf("%d hosts: no work recorded: %+v", hosts, res)
		}
		if len(res.Assignment) != g.NumNodes() {
			t.Fatalf("assignment length %d", len(res.Assignment))
		}
		// Modularity reported must match an independent recomputation.
		q := graph.Modularity(g, res.Assignment)
		if math.Abs(q-res.Modularity) > 1e-9 {
			t.Fatalf("reported Q %.6f != recomputed %.6f", res.Modularity, q)
		}
	}
}

func TestLouvainBeatsSingletonAndMonolith(t *testing.T) {
	g := communityGraph()
	res, err := Louvain(g, runtime.Config{NumHosts: 2}, Config{}, CDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	singleton := make([]graph.NodeID, g.NumNodes())
	for i := range singleton {
		singleton[i] = graph.NodeID(i)
	}
	monolith := make([]graph.NodeID, g.NumNodes())
	if res.Modularity <= graph.Modularity(g, singleton) ||
		res.Modularity <= graph.Modularity(g, monolith) {
		t.Fatalf("Louvain Q=%.3f no better than trivial assignments", res.Modularity)
	}
}

func TestLouvainConsistentAcrossHostCounts(t *testing.T) {
	g := communityGraph()
	r1, err := Louvain(g, runtime.Config{NumHosts: 1}, Config{}, CDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Louvain(g, runtime.Config{NumHosts: 4}, Config{}, CDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Move decisions are synchronous and deterministic up to float
	// round-off in community totals; allow small quality drift.
	if math.Abs(r1.Modularity-r4.Modularity) > 0.05 {
		t.Fatalf("modularity drifted across hosts: %.4f vs %.4f",
			r1.Modularity, r4.Modularity)
	}
}

func TestLouvainAllVariants(t *testing.T) {
	g := gen.Communities(4, 20, 4, 1, true, 5)
	for _, v := range npm.Variants {
		t.Run(string(v), func(t *testing.T) {
			cfg := Config{Variant: v}
			if v == npm.MC {
				cfg.Store = kvstore.NewCluster(2, 2)
			}
			res, err := Louvain(g, runtime.Config{NumHosts: 2}, cfg, CDOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Modularity < 0.3 {
				t.Fatalf("variant %s: modularity %.3f", v, res.Modularity)
			}
		})
	}
}

func TestLouvainEarlyTermination(t *testing.T) {
	g := communityGraph()
	res, err := Louvain(g, runtime.Config{NumHosts: 2}, Config{},
		CDOptions{EarlyTermination: true})
	if err != nil {
		t.Fatal(err)
	}
	// Vite's heuristic trades some quality for speed but must stay sane.
	if res.Modularity < 0.35 {
		t.Fatalf("early-termination modularity %.3f too low", res.Modularity)
	}
}

func TestLouvainTimersPopulated(t *testing.T) {
	g := communityGraph()
	res, err := Louvain(g, runtime.Config{NumHosts: 2}, Config{}, CDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compute <= 0 || res.Comm <= 0 {
		t.Fatalf("timers not populated: %+v", res)
	}
}

func TestLouvainEdgelessGraph(t *testing.T) {
	b := graph.NewBuilder(10)
	g := b.Build()
	res, err := Louvain(g, runtime.Config{NumHosts: 2}, Config{}, CDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Modularity != 0 {
		t.Fatalf("edgeless modularity = %v", res.Modularity)
	}
}

func TestLeidenQuality(t *testing.T) {
	g := communityGraph()
	for _, hosts := range []int{1, 3} {
		res, err := Leiden(g, runtime.Config{NumHosts: hosts, ThreadsPerHost: 3},
			Config{}, CDOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Modularity < 0.4 {
			t.Fatalf("%d hosts: Leiden modularity %.3f", hosts, res.Modularity)
		}
		q := graph.Modularity(g, res.Assignment)
		if math.Abs(q-res.Modularity) > 1e-9 {
			t.Fatalf("reported Q %.6f != recomputed %.6f", res.Modularity, q)
		}
	}
}

func TestLeidenComparableToLouvain(t *testing.T) {
	// The paper reports Leiden improves or matches Louvain quality.
	g := gen.Communities(8, 25, 4, 2, true, 33)
	lv, err := Louvain(g, runtime.Config{NumHosts: 2}, Config{}, CDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ld, err := Leiden(g, runtime.Config{NumHosts: 2}, Config{}, CDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ld.Modularity < lv.Modularity-0.05 {
		t.Fatalf("Leiden Q=%.4f much worse than Louvain Q=%.4f",
			ld.Modularity, lv.Modularity)
	}
}

func TestContractPreservesWeight(t *testing.T) {
	g := communityGraph()
	assign := make([]graph.NodeID, g.NumNodes())
	for i := range assign {
		assign[i] = graph.NodeID(i % 7) // arbitrary grouping
	}
	coarse, remap := contract(g, assign)
	if coarse.NumNodes() != 7 {
		t.Fatalf("coarse nodes = %d, want 7", coarse.NumNodes())
	}
	if len(remap) != 7 {
		t.Fatalf("remap size = %d", len(remap))
	}
	if math.Abs(coarse.TotalWeight()-g.TotalWeight()) > 1e-6 {
		t.Fatalf("contraction lost weight: %v vs %v",
			coarse.TotalWeight(), g.TotalWeight())
	}
}

func TestContractIdentityKeepsStructure(t *testing.T) {
	g := gen.Grid(4, 4, true, 1)
	assign := make([]graph.NodeID, g.NumNodes())
	for i := range assign {
		assign[i] = graph.NodeID(i)
	}
	coarse, _ := contract(g, assign)
	if coarse.NumNodes() != g.NumNodes() || coarse.NumEdges() != g.NumEdges() {
		t.Fatal("identity contraction changed the graph")
	}
}

func TestLeidenGammaControlsRefinement(t *testing.T) {
	// A permissive gamma merges subcommunities aggressively; a strict one
	// keeps more nodes singleton. Both must stay valid clusterings.
	g := communityGraph()
	loose, err := Leiden(g, runtime.Config{NumHosts: 2}, Config{},
		CDOptions{Gamma: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Leiden(g, runtime.Config{NumHosts: 2}, Config{},
		CDOptions{Gamma: 10})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Modularity < 0.3 || strict.Modularity < 0.3 {
		t.Fatalf("gamma variants degraded quality: %.3f / %.3f",
			loose.Modularity, strict.Modularity)
	}
}
