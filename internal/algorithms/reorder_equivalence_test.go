package algorithms

import (
	"math"
	"testing"

	"kimbap/internal/comm"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// Reorder equivalence: vertex reordering (DESIGN.md §14) is a pure layout
// change. Property values stay in original-ID space (initOwn seeds
// original IDs; only value-as-address sites translate), so every
// algorithm's collected output — indexed by original ID — must be
// bit-identical with reordering on or off, for every policy, across the
// full execution matrix: dense and sparse rounds, both wire formats (the
// sparse runs also exercise the v2s reduce payloads), both transports,
// and every host count the partitioner supports.

func reorderPolicies() []graph.ReorderPolicy {
	return []graph.ReorderPolicy{graph.ReorderDegree, graph.ReorderBlockedDegree}
}

func runCCReorder(t *testing.T, g *graph.Graph, rc runtime.Config, acfg Config,
	algo func(h *runtime.Host, cfg Config, out []graph.NodeID) CCStats) []graph.NodeID {
	t.Helper()
	c, err := runtime.NewCluster(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]graph.NodeID, g.NumNodes())
	c.Run(func(h *runtime.Host) { algo(h, acfg, out) })
	return out
}

// TestReorderEquivalenceCCSVFullMatrix pins CC-SV outputs across
// {off, degree, blocked-degree} × {dense, sparse} × {v1, v2} × {in-memory,
// TCP} × {2, 4, 8} hosts. CC-SV exercises both trans-vertex addressing
// paths (hook targets and shortcut grandparent reads), so it is the
// matrix workhorse; the other algorithms get the policy sweep below.
func TestReorderEquivalenceCCSVFullMatrix(t *testing.T) {
	g := gen.RMAT(8, 6, false, 2)
	want := graph.ReferenceComponents(g)
	for _, tcp := range []bool{false, true} {
		for _, wire := range []comm.WireFormat{comm.WireV1, comm.WireV2} {
			for _, dense := range []bool{false, true} {
				for _, hosts := range []int{2, 4, 8} {
					rc := runtime.Config{
						NumHosts: hosts, ThreadsPerHost: 3, Policy: partition.CVC,
						UseTCP: tcp, Wire: wire,
					}
					acfg := Config{Dense: dense}
					base := runCCReorder(t, g, rc, acfg, CCSV)
					for i := range base {
						if base[i] != want[i] {
							t.Fatalf("tcp=%v/wire=%d/dense=%v/%dh: baseline node %d labeled %d, reference %d",
								tcp, wire, dense, hosts, i, base[i], want[i])
						}
					}
					for _, pol := range reorderPolicies() {
						rrc := rc
						rrc.Reorder = pol
						got := runCCReorder(t, g, rrc, acfg, CCSV)
						for i := range base {
							if got[i] != base[i] {
								t.Fatalf("tcp=%v/wire=%d/dense=%v/%dh/%s: node %d labeled %d, unreordered labeled %d",
									tcp, wire, dense, hosts, pol, i, got[i], base[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestReorderEquivalenceAllAlgorithms sweeps every flat SPMD algorithm
// (all CC variants, MIS, MSF) and the async/adaptive engines under both
// reorder policies: outputs must match the unreordered run bit for bit.
func TestReorderEquivalenceAllAlgorithms(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"chain": gen.Chain(300, true, 3),
		"rmat":  gen.RMAT(8, 6, true, 2),
		"grid":  gen.Grid(12, 12, true, 7),
	}
	for gname, g := range graphs {
		for _, hosts := range []int{2, 4} {
			rc := runtime.Config{NumHosts: hosts, ThreadsPerHost: 3, Policy: partition.CVC}

			for aname, algo := range ccAlgos() {
				for _, mode := range []Mode{ExecBSP, ExecAsync, ExecAdaptive} {
					base := runCCReorder(t, g, rc, Config{Mode: mode}, algo)
					for _, pol := range reorderPolicies() {
						rrc := rc
						rrc.Reorder = pol
						got := runCCReorder(t, g, rrc, Config{Mode: mode}, algo)
						for i := range base {
							if got[i] != base[i] {
								t.Fatalf("%s/%s/%dh/%s/%s: node %d labeled %d, unreordered labeled %d",
									gname, aname, hosts, mode, pol, i, got[i], base[i])
							}
						}
					}
				}
			}

			baseMIS := runMISReorder(t, g, rc)
			if !graph.IsValidMIS(g, baseMIS) {
				t.Fatalf("%s/%dh: unreordered MIS invalid", gname, hosts)
			}
			baseComp, baseStats := runMSFReorder(t, g, rc)
			for _, pol := range reorderPolicies() {
				rrc := rc
				rrc.Reorder = pol
				gotMIS := runMISReorder(t, g, rrc)
				for i := range baseMIS {
					if gotMIS[i] != baseMIS[i] {
						t.Fatalf("%s/%dh/%s: MIS membership of node %d = %v, unreordered %v",
							gname, hosts, pol, i, gotMIS[i], baseMIS[i])
					}
				}
				gotComp, gotStats := runMSFReorder(t, g, rrc)
				// The forest (edge set and labels) is bit-identical; the
				// weight is a float sum whose per-thread accumulation order
				// follows the layout, so allow round-off as the host-count
				// determinism test does.
				if math.Abs(gotStats.TotalWeight-baseStats.TotalWeight) > 1e-9*baseStats.TotalWeight ||
					gotStats.ForestEdges != baseStats.ForestEdges {
					t.Fatalf("%s/%dh/%s: MSF weight/edges = %v/%d, unreordered %v/%d",
						gname, hosts, pol, gotStats.TotalWeight, gotStats.ForestEdges,
						baseStats.TotalWeight, baseStats.ForestEdges)
				}
				for i := range baseComp {
					if gotComp[i] != baseComp[i] {
						t.Fatalf("%s/%dh/%s: MSF component of node %d = %d, unreordered %d",
							gname, hosts, pol, i, gotComp[i], baseComp[i])
					}
				}
			}
		}
	}
}

func runMISReorder(t *testing.T, g *graph.Graph, rc runtime.Config) []bool {
	t.Helper()
	c, err := runtime.NewCluster(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]bool, g.NumNodes())
	c.Run(func(h *runtime.Host) { MIS(h, Config{}, out) })
	return out
}

func runMSFReorder(t *testing.T, g *graph.Graph, rc runtime.Config) ([]graph.NodeID, MSFStats) {
	t.Helper()
	c, err := runtime.NewCluster(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]graph.NodeID, g.NumNodes())
	var stats MSFStats
	c.Run(func(h *runtime.Host) {
		s := MSF(h, Config{}, out)
		if h.Rank == 0 {
			stats = s
		}
	})
	return out, stats
}
