package algorithms

import (
	"math"
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/npm"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

func runMIS(t *testing.T, g *graph.Graph, hosts int, cfg Config) ([]bool, MISStats) {
	t.Helper()
	c, err := runtime.NewCluster(g, runtime.Config{
		NumHosts: hosts, ThreadsPerHost: 3, Policy: partition.CVC,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if cfg.Variant == npm.MC && cfg.Store == nil {
		cfg.Store = kvstore.NewCluster(hosts, hosts)
	}
	out := make([]bool, g.NumNodes())
	var stats MISStats
	c.Run(func(h *runtime.Host) {
		s := MIS(h, cfg, out)
		if h.Rank == 0 {
			stats = s
		}
	})
	return out, stats
}

func TestMISValidOnVariousGraphs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid": gen.Grid(9, 9, false, 1),
		"rmat": gen.RMAT(8, 6, false, 2),
		"star": gen.Star(50),
	}
	for name, g := range graphs {
		for _, hosts := range []int{1, 2, 4} {
			set, stats := runMIS(t, g, hosts, Config{})
			if !graph.IsValidMIS(g, set) {
				t.Fatalf("%s/%d hosts: invalid MIS", name, hosts)
			}
			if stats.Size == 0 {
				t.Fatalf("%s: empty MIS reported", name)
			}
		}
	}
}

func TestMISStarPicksLeaves(t *testing.T) {
	// On a star, the hub has max degree (lowest priority): the leaves win.
	g := gen.Star(40)
	set, stats := runMIS(t, g, 2, Config{})
	if set[0] {
		t.Error("hub should not be in the MIS")
	}
	if stats.Size != 39 {
		t.Errorf("MIS size = %d, want 39 leaves", stats.Size)
	}
}

func TestMISAllVariants(t *testing.T) {
	g := gen.Grid(6, 6, false, 1)
	for _, v := range npm.Variants {
		t.Run(string(v), func(t *testing.T) {
			set, _ := runMIS(t, g, 2, Config{Variant: v})
			if !graph.IsValidMIS(g, set) {
				t.Fatalf("variant %s produced invalid MIS", v)
			}
		})
	}
}

func runMSF(t *testing.T, g *graph.Graph, hosts int, cfg Config) ([]graph.NodeID, MSFStats) {
	t.Helper()
	c, err := runtime.NewCluster(g, runtime.Config{
		NumHosts: hosts, ThreadsPerHost: 3, Policy: partition.CVC,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if cfg.Variant == npm.MC && cfg.Store == nil {
		cfg.Store = kvstore.NewCluster(hosts, hosts)
	}
	out := make([]graph.NodeID, g.NumNodes())
	var stats MSFStats
	c.Run(func(h *runtime.Host) {
		s := MSF(h, cfg, out)
		if h.Rank == 0 {
			stats = s
		}
	})
	return out, stats
}

// checkSamePartition verifies labels induce the same equivalence classes
// as the reference component labeling.
func checkSamePartition(t *testing.T, g *graph.Graph, got []graph.NodeID, name string) {
	t.Helper()
	want := graph.ReferenceComponents(g)
	fwd := map[graph.NodeID]graph.NodeID{}
	rev := map[graph.NodeID]graph.NodeID{}
	for i := range want {
		if w, ok := fwd[got[i]]; ok && w != want[i] {
			t.Fatalf("%s: label %d spans two reference components", name, got[i])
		}
		if g2, ok := rev[want[i]]; ok && g2 != got[i] {
			t.Fatalf("%s: reference component %d split across labels", name, want[i])
		}
		fwd[got[i]] = want[i]
		rev[want[i]] = got[i]
	}
}

func TestMSFMatchesKruskal(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid":   gen.Grid(8, 8, true, 7),
		"rmat":   gen.RMAT(7, 5, true, 8),
		"forest": gen.ErdosRenyi(80, 60, true, 9), // disconnected
	}
	for name, g := range graphs {
		want := graph.ReferenceMSFWeight(g)
		for _, hosts := range []int{1, 2, 4} {
			comp, stats := runMSF(t, g, hosts, Config{})
			if math.Abs(stats.TotalWeight-want) > 1e-6*math.Max(1, want) {
				t.Fatalf("%s/%d hosts: MSF weight %.6f, want %.6f",
					name, hosts, stats.TotalWeight, want)
			}
			// The forest connects exactly the graph's components. MSF
			// labels are canonical roots, not min IDs, so compare the
			// partition structure.
			checkSamePartition(t, g, comp, "MSF components "+name)
			// A forest over C components and N nodes has N-C edges
			// (isolated nodes form their own components).
			labels := graph.ReferenceComponents(g)
			wantEdges := int64(g.NumNodes() - graph.NumComponents(labels))
			if stats.ForestEdges != wantEdges {
				t.Fatalf("%s/%d hosts: forest edges %d, want %d",
					name, hosts, stats.ForestEdges, wantEdges)
			}
		}
	}
}

func TestMSFUnweightedGraph(t *testing.T) {
	// Unweighted edges all cost 1: MSF weight = N - C.
	g := gen.Grid(5, 5, false, 1)
	_, stats := runMSF(t, g, 2, Config{})
	if stats.TotalWeight != 24 {
		t.Fatalf("unweighted grid MSF weight = %v, want 24", stats.TotalWeight)
	}
}

func TestMSFDeterministicAcrossHosts(t *testing.T) {
	g := gen.RMAT(7, 4, true, 11)
	_, s1 := runMSF(t, g, 1, Config{})
	_, s4 := runMSF(t, g, 4, Config{})
	// Summation order differs across host counts; allow float round-off.
	if math.Abs(s1.TotalWeight-s4.TotalWeight) > 1e-9*s1.TotalWeight {
		t.Fatalf("MSF weight differs across host counts: %v vs %v",
			s1.TotalWeight, s4.TotalWeight)
	}
	if s1.ForestEdges != s4.ForestEdges {
		t.Fatalf("forest edges differ across host counts: %d vs %d",
			s1.ForestEdges, s4.ForestEdges)
	}
}

func TestMinEdgeOpProperties(t *testing.T) {
	op := MinEdgeOp()
	a := MinEdge{W: 1, A: 2, B: 3}
	b := MinEdge{W: 1, A: 2, B: 4}
	if op.Combine(a, b) != a || op.Combine(b, a) != a {
		t.Error("tie-break by endpoints not commutative-consistent")
	}
	inf := infEdge()
	if op.Combine(inf, a) != a || op.Combine(a, inf) != a {
		t.Error("identity not neutral")
	}
}

func TestMinEdgeCodecRoundTrip(t *testing.T) {
	c := MinEdgeCodec{}
	e := MinEdge{W: 3.25, A: 7, B: 99}
	buf := c.Append(nil, e)
	if len(buf) != c.Size() {
		t.Fatalf("encoded size %d != %d", len(buf), c.Size())
	}
	got, rest := c.Read(buf)
	if got != e || len(rest) != 0 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestMSFAllVariants(t *testing.T) {
	// Exercises the MinEdge struct codec through every map backend.
	g := gen.Grid(6, 6, true, 7)
	want := graph.ReferenceMSFWeight(g)
	for _, v := range npm.Variants {
		t.Run(string(v), func(t *testing.T) {
			_, stats := runMSF(t, g, 2, Config{Variant: v})
			if math.Abs(stats.TotalWeight-want) > 1e-6*want {
				t.Fatalf("variant %s: weight %.4f, want %.4f", v, stats.TotalWeight, want)
			}
		})
	}
}

func TestCCSCLPAllVariants(t *testing.T) {
	g := gen.Grid(6, 6, false, 1)
	for _, v := range npm.Variants {
		t.Run(string(v), func(t *testing.T) {
			got := runCC(t, g, 2, partition.CVC, Config{Variant: v}, CCSCLP)
			checkLabels(t, g, got, "CC-SCLP/"+string(v))
		})
	}
}

func TestMISMaxRoundsCap(t *testing.T) {
	// The safety cap must terminate the loop even before convergence.
	g := gen.Grid(10, 10, false, 1)
	_, stats := runMIS(t, g, 2, Config{MaxRounds: 1})
	if stats.Rounds != 1 {
		t.Fatalf("rounds = %d with cap 1", stats.Rounds)
	}
}
