package algorithms

import (
	"kimbap/internal/comm"
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

// Deterministic Leiden community detection (Traag et al.). Leiden improves
// on Louvain by refining each community into well-connected subcommunities
// before contraction, so badly-connected communities are split rather than
// frozen. Ours is structured like the paper's distributed implementation:
// the local-moving phase is shared with Louvain, and the refinement phase
// uses additional node-property maps — community, community totals,
// subcommunity, subcommunity totals, and subcommunity sizes (the paper's
// "five node property maps") — whose reductions target representative
// nodes (trans-vertex).
//
// The paper reports LD is on average 7x slower than LV (more edge
// iterations and more maps per refinement round) while improving community
// quality; the same relationship holds here.

// Leiden runs multi-level Leiden. See Louvain for driver semantics.
func Leiden(g *graph.Graph, ccfg runtime.Config, acfg Config, opts CDOptions) (CDResult, error) {
	return multilevel(g, ccfg, acfg, opts.withDefaults(), true)
}

// leidenRefine splits the communities in assignComm into well-connected
// subcommunities (SPMD). On return, this host's master range of assignSub
// holds subcommunity labels, which the driver contracts on (community
// labels in assignComm are what gets reported).
func leidenRefine(h *runtime.Host, cfg Config, opts CDOptions,
	assignComm, assignSub []graph.NodeID) {
	local := h.HP.Local
	lo, hi := h.HP.MasterRangeGlobal()

	localWeight := 0.0
	for n := 0; n < local.NumNodes(); n++ {
		elo, ehi := local.EdgeRange(graph.NodeID(n))
		for e := elo; e < ehi; e++ {
			localWeight += local.Weight(e)
		}
	}
	twoM := comm.AllReduceFloat64(h.EP, localWeight)
	if twoM == 0 {
		for g := lo; g < hi; g++ {
			assignSub[g] = g
		}
		return
	}

	// Map 1: community labels from the local-moving phase, republished as
	// a property map so mirrors are readable.
	cmap := cfg.newNodeMap(h, npm.Overwrite[graph.NodeID]())
	for g := lo; g < hi; g++ {
		cmap.Set(g, assignComm[g])
	}
	cmap.InitSync()
	cmap.PinMirrors()

	// Map 2: community totals, keyed by community representative.
	ctot := cfg.newFloatMap(h, npm.SumFloat64())
	h.ParForMasters(func(_ int, n graph.NodeID) { ctot.Set(h.HP.GlobalID(n), 0) })
	ctot.InitSync()
	h.TimeCompute(func() {
		h.ParForMasters(func(tid int, n graph.NodeID) {
			gid := h.HP.GlobalID(n)
			if k := weightedDegree(local, n); k != 0 {
				ctot.Reduce(tid, cmap.Read(gid), k)
			}
		})
	})
	ctot.ReduceSync()

	// Map 3: subcommunity labels, initially singleton.
	sub := cfg.newNodeMap(h, npm.Overwrite[graph.NodeID]())
	initOwn(h, sub)
	sub.PinMirrors()

	const refineRounds = 4
	for round := 0; round < refineRounds; round++ {
		if cfg.requestActive() {
			requestLocalProxies(h, cmap)
			requestLocalProxies(h, sub)
		}

		// Map 4: subcommunity totals. Map 5: subcommunity sizes. Both are
		// rebuilt each round, keyed by subcommunity representative.
		subtot := cfg.newFloatMap(h, npm.SumFloat64())
		subsize := cfg.newFloatMap(h, npm.SumFloat64())
		h.ParForMasters(func(_ int, n graph.NodeID) {
			gid := h.HP.GlobalID(n)
			subtot.Set(gid, 0)
			subsize.Set(gid, 0)
		})
		subtot.InitSync()
		subsize.InitSync()
		h.TimeCompute(func() {
			h.ParForMasters(func(tid int, n graph.NodeID) {
				gid := h.HP.GlobalID(n)
				s := sub.Read(gid)
				subtot.Reduce(tid, s, weightedDegree(local, n))
				subsize.Reduce(tid, s, 1)
			})
		})
		subtot.ReduceSync()
		subsize.ReduceSync()

		// Request phase: totals of own community, own subcommunity, and
		// neighbor subcommunities (dynamically computed IDs).
		h.TimeCompute(func() {
			h.ParForMasters(func(_ int, n graph.NodeID) {
				gid := h.HP.GlobalID(n)
				ctot.Request(cmap.Read(gid))
				s := sub.Read(gid)
				subtot.Request(s)
				subsize.Request(s)
				elo, ehi := local.EdgeRange(n)
				for e := elo; e < ehi; e++ {
					dgid := h.HP.GlobalID(local.Dst(e))
					if cmap.Read(dgid) == cmap.Read(gid) {
						subtot.Request(sub.Read(dgid))
					}
				}
			})
		})
		ctot.RequestSync()
		subtot.RequestSync()
		subsize.RequestSync()

		// Merge phase: a node still alone in its subcommunity and
		// well-connected to its community joins the best neighbor
		// subcommunity within its community.
		var moved runtime.CountReducer
		h.TimeCompute(func() {
			h.ParForMasters(func(tid int, n graph.NodeID) {
				gid := h.HP.GlobalID(n)
				s := sub.Read(gid)
				if s != gid || subsize.Read(s) != 1 {
					return // only singleton subcommunities merge
				}
				c := cmap.Read(gid)
				kn := weightedDegree(local, n)
				if kn == 0 {
					return
				}
				// Connectivity gate: the node must be sufficiently
				// linked to the rest of its community (Traag et al.'s
				// gamma-scaled well-connectedness condition).
				intoC := 0.0
				links := map[graph.NodeID]float64{}
				elo, ehi := local.EdgeRange(n)
				for e := elo; e < ehi; e++ {
					dgid := h.HP.GlobalID(local.Dst(e))
					if dgid == gid || cmap.Read(dgid) != c {
						continue
					}
					intoC += local.Weight(e)
					links[sub.Read(dgid)] += local.Weight(e)
				}
				if intoC < opts.Gamma*kn*(ctot.Read(c)-kn)/twoM {
					return // badly connected: stays singleton
				}
				best, bestGain := s, 0.0
				for t, knt := range links {
					if t == s {
						continue
					}
					gain := knt - subtot.Read(t)*kn/twoM
					if gain > bestGain+1e-12 || (gain > bestGain-1e-12 && gain > 0 && t < best) {
						best, bestGain = t, gain
					}
				}
				if best != s {
					sub.Reduce(tid, gid, best)
					moved.Reduce(1)
				}
			})
		})
		sub.ReduceSync()
		sub.BroadcastSync()
		moved.Sync(h.EP)
		if moved.Read() == 0 {
			break
		}
	}

	if cfg.requestActive() {
		requestLocalProxies(h, sub)
	}
	for g := lo; g < hi; g++ {
		assignSub[g] = sub.Read(g)
	}
	sub.UnpinMirrors()
	cmap.UnpinMirrors()
}

// weightedDegree sums the weights of n's local out-edges. Under the OEC
// partitioning LD runs with, masters hold their full adjacency, so this is
// the global weighted degree.
func weightedDegree(local *graph.Graph, n graph.NodeID) float64 {
	sum := 0.0
	lo, hi := local.EdgeRange(n)
	for e := lo; e < hi; e++ {
		sum += local.Weight(e)
	}
	return sum
}
