package algorithms

import (
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// Execution-mode equivalence: the asynchronous drain and the adaptive
// policy engine are pure scheduling changes. CC converges to the min-label
// fixpoint and MIS's per-round decisions depend only on values fixed at
// round start, so every mode must converge to bit-identical final outputs
// — across worker counts (the async scheduler's stealing and CAS paths are
// timing-sensitive) and host counts (mirror CAS applies must surface at
// reduce-sync exactly like buffered reduces).

func modeGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		// chain maximizes pointer-jumping depth — the async win case.
		"chain": gen.Chain(300, false, 3),
		"rmat":  gen.RMAT(8, 6, false, 2),
		"grid":  gen.Grid(12, 12, false, 7),
	}
}

func runCCMode(t *testing.T, g *graph.Graph, hosts, threads int, mode Mode,
	algo func(h *runtime.Host, cfg Config, out []graph.NodeID) CCStats) []graph.NodeID {
	t.Helper()
	c, err := runtime.NewCluster(g, runtime.Config{
		NumHosts: hosts, ThreadsPerHost: threads, Policy: partition.CVC,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]graph.NodeID, g.NumNodes())
	c.Run(func(h *runtime.Host) { algo(h, Config{Mode: mode}, out) })
	return out
}

func TestCCModesConvergeIdentically(t *testing.T) {
	for gname, g := range modeGraphs() {
		want := graph.ReferenceComponents(g)
		for aname, algo := range ccAlgos() {
			for _, hosts := range []int{1, 2, 4, 8} {
				for _, threads := range []int{1, 3} {
					ref := runCCMode(t, g, hosts, threads, ExecBSP, algo)
					for _, mode := range []Mode{ExecAsync, ExecAdaptive} {
						got := runCCMode(t, g, hosts, threads, mode, algo)
						for i := range ref {
							if got[i] != ref[i] {
								t.Fatalf("%s/%s/%dh/%dt/%s: node %d labeled %d, BSP labeled %d",
									gname, aname, hosts, threads, mode, i, got[i], ref[i])
							}
							if got[i] != want[i] {
								t.Fatalf("%s/%s/%dh/%dt/%s: node %d labeled %d, reference %d",
									gname, aname, hosts, threads, mode, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

func runMISMode(t *testing.T, g *graph.Graph, hosts, threads int, mode Mode) []bool {
	t.Helper()
	c, err := runtime.NewCluster(g, runtime.Config{
		NumHosts: hosts, ThreadsPerHost: threads, Policy: partition.CVC,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]bool, g.NumNodes())
	c.Run(func(h *runtime.Host) { MIS(h, Config{Mode: mode}, out) })
	return out
}

func TestMISModesConvergeIdentically(t *testing.T) {
	for gname, g := range modeGraphs() {
		for _, hosts := range []int{1, 2, 4, 8} {
			for _, threads := range []int{1, 3} {
				ref := runMISMode(t, g, hosts, threads, ExecBSP)
				if !graph.IsValidMIS(g, ref) {
					t.Fatalf("%s/%dh/%dt: BSP produced invalid MIS", gname, hosts, threads)
				}
				for _, mode := range []Mode{ExecAsync, ExecAdaptive} {
					got := runMISMode(t, g, hosts, threads, mode)
					for i := range ref {
						if got[i] != ref[i] {
							t.Fatalf("%s/%dh/%dt/%s: node %d membership %v, BSP %v",
								gname, hosts, threads, mode, i, got[i], ref[i])
						}
					}
				}
			}
		}
	}
}

// The adaptive engine must actually exercise the async path where it is
// profitable: on a single host every target is local, so the first round
// probes async, and a converging CC run should keep it on.
func TestAdaptiveModeTraceUsesAsync(t *testing.T) {
	g := gen.Chain(400, false, 5)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 1, ThreadsPerHost: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]graph.NodeID, g.NumNodes())
	var rounds RoundStats
	c.Run(func(h *runtime.Host) {
		stats := CCSV(h, Config{Mode: ExecAdaptive, LogRounds: true}, out)
		rounds = stats.PerRound
	})
	async := 0
	for _, m := range rounds.Mode {
		if m == "async" {
			async++
		}
	}
	if async == 0 {
		t.Fatalf("adaptive single-host CC-SV never chose async; trace %v", rounds.Mode)
	}
}
