// Package gen produces deterministic synthetic graphs standing in for the
// paper's four evaluation inputs (Table 1): a high-diameter road network
// (road-europe), a power-law social network (friendster), and two larger
// power-law web crawls (clueweb12, wdc12). Real inputs are 3 GB - 1 TB and
// not redistributable, so the reproduction uses generators that preserve
// the two structural properties the evaluation depends on: diameter and
// degree skew. All generators are deterministic given a seed: every
// candidate edge draws from its own counter-based PRNG stream (rand.go),
// so generation parallelizes over candidate chunks and the output is
// bit-identical at every worker count.
package gen

import (
	"fmt"
	"math"
	"os"
	"strings"

	"kimbap/internal/graph"
)

// Grid generates a rows x cols 4-neighbor grid, the road-network analogue:
// uniform small degree (<=4), high diameter (rows+cols), single component.
// The result is symmetric. If weighted, edge weights are deterministic
// pseudo-random values in [1, 100).
//kimbap:deterministic
func Grid(rows, cols int, weighted bool, seed int64) *graph.Graph {
	// Candidate c: cell c/2's rightward (even c) or downward (odd c) edge;
	// border cells drop the candidates that would leave the grid.
	b := builderFromCandidates(rows*cols, rows*cols*2, weighted,
		func(c int) (src, dst graph.NodeID, w float64, ok bool) {
			cell := c >> 1
			i, j := cell/cols, cell%cols
			if c&1 == 0 {
				if j+1 >= cols {
					return 0, 0, 0, false
				}
				dst = graph.NodeID(cell + 1)
			} else {
				if i+1 >= rows {
					return 0, 0, 0, false
				}
				dst = graph.NodeID(cell + cols)
			}
			r := newEdgeRand(seed, int64(c))
			return graph.NodeID(cell), dst, 1 + 99*r.Float64(), true
		})
	b.Symmetrize()
	return b.Build()
}

// RMAT generates a power-law graph with 2^scale nodes and approximately
// edgeFactor*2^scale undirected edges using the R-MAT recursive-quadrant
// model with the standard (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) parameters.
// Duplicate edges and self-loops are removed and the result is symmetrized,
// so the final edge count is somewhat below 2*edgeFactor*2^scale.
//kimbap:deterministic
func RMAT(scale int, edgeFactor int, weighted bool, seed int64) *graph.Graph {
	return rmat(scale, edgeFactor, 0.57, 0.19, 0.19, weighted, seed)
}

func rmat(scale, edgeFactor int, a, b, c float64, weighted bool, seed int64) *graph.Graph {
	n := 1 << scale
	bld := builderFromCandidates(n, edgeFactor*n, weighted,
		func(cd int) (graph.NodeID, graph.NodeID, float64, bool) {
			r := newEdgeRand(seed, int64(cd))
			src, dst := 0, 0
			for bit := scale - 1; bit >= 0; bit-- {
				p := r.Float64()
				switch {
				case p < a:
					// top-left quadrant: no bits set
				case p < a+b:
					dst |= 1 << bit
				case p < a+b+c:
					src |= 1 << bit
				default:
					src |= 1 << bit
					dst |= 1 << bit
				}
			}
			if src == dst {
				return 0, 0, 0, false
			}
			return graph.NodeID(src), graph.NodeID(dst), 1 + 99*r.Float64(), true
		})
	bld.Symmetrize()
	bld.Dedup()
	return bld.Build()
}

// ErdosRenyi generates a G(n, m) random graph with m directed edges chosen
// uniformly (self-loops skipped), then symmetrized and deduplicated.
//kimbap:deterministic
func ErdosRenyi(n, m int, weighted bool, seed int64) *graph.Graph {
	b := builderFromCandidates(n, m, weighted,
		func(c int) (graph.NodeID, graph.NodeID, float64, bool) {
			r := newEdgeRand(seed, int64(c))
			src := graph.NodeID(r.Intn(n))
			dst := graph.NodeID(r.Intn(n))
			if src == dst {
				return 0, 0, 0, false
			}
			return src, dst, 1 + 99*r.Float64(), true
		})
	b.Symmetrize()
	b.Dedup()
	return b.Build()
}

// Chain generates a path graph 0-1-2-...-(n-1), symmetrized. Its diameter is
// n-1, the extreme case for pointer-jumping algorithms.
//kimbap:deterministic
func Chain(n int, weighted bool, seed int64) *graph.Graph {
	candidates := n - 1
	if n == 0 {
		candidates = 0
	}
	b := builderFromCandidates(n, candidates, weighted,
		func(c int) (graph.NodeID, graph.NodeID, float64, bool) {
			r := newEdgeRand(seed, int64(c))
			return graph.NodeID(c), graph.NodeID(c + 1), 1 + 99*r.Float64(), true
		})
	b.Symmetrize()
	return b.Build()
}

// Star generates a hub-and-spoke graph: node 0 connected to all others,
// symmetrized. It is the extreme case for reduction conflicts on a
// high-degree node.
//kimbap:deterministic
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.NodeID(i))
	}
	b.Symmetrize()
	return b.Build()
}

// Communities generates a planted-partition graph with k communities of
// the given size: intra-community edges with probability pIn expressed via
// expected intra-degree degIn, plus degOut random inter-community edges per
// node. Ground truth is recoverable by community detection; used to sanity
// check Louvain/Leiden quality.
//kimbap:deterministic
func Communities(k, size, degIn, degOut int, weighted bool, seed int64) *graph.Graph {
	n := k * size
	// Each node owns a block of candidate slots: slot 0 is its ring edge
	// (connecting the community), the next degIn slots draw intra-community
	// destinations, the rest draw global ones.
	slots := 1 + degIn + degOut
	b := builderFromCandidates(n, n*slots, weighted,
		func(c int) (graph.NodeID, graph.NodeID, float64, bool) {
			u, slot := c/slots, c%slots
			base := (u / size) * size
			r := newEdgeRand(seed, int64(c))
			var v int
			switch {
			case slot == 0:
				// Ring within the community guarantees it is connected.
				v = base + (u-base+1)%size
			case slot <= degIn:
				v = base + r.Intn(size)
			default:
				v = r.Intn(n)
			}
			if u == v {
				return 0, 0, 0, false
			}
			return graph.NodeID(u), graph.NodeID(v), 1 + 9*r.Float64(), true
		})
	b.Symmetrize()
	b.Dedup()
	return b.Build()
}

// Preset names the scaled-down analogues of the paper's Table 1 inputs.
type Preset string

// The four presets mirror Table 1's graph classes at laptop scale.
const (
	// RoadEurope: high diameter, uniform degree <= 4 (paper: 173M nodes,
	// 365M edges, max degree 16). Here: a grid.
	RoadEurope Preset = "road-europe"
	// Friendster: power-law social network (paper: 41M nodes, 2B edges,
	// max degree 3M). Here: R-MAT scale 14.
	Friendster Preset = "friendster"
	// Clueweb12: large power-law web crawl (paper: 978M nodes, 85B edges).
	// Here: R-MAT scale 16.
	Clueweb12 Preset = "clueweb12"
	// WDC12: the largest public graph (paper: 3B nodes, 256B edges).
	// Here: R-MAT scale 17.
	WDC12 Preset = "wdc12"
)

// Presets lists all graph presets in Table 1 order.
var Presets = []Preset{RoadEurope, Friendster, Clueweb12, WDC12}

// Build generates the preset graph. Weighted graphs are needed for MSF,
// LV, and LD; generators always attach weights so one graph serves all
// algorithms.
//kimbap:deterministic
func Build(p Preset) *graph.Graph {
	switch p {
	case RoadEurope:
		return Grid(160, 160, true, 42)
	case Friendster:
		return RMAT(14, 16, true, 43)
	case Clueweb12:
		return RMAT(16, 20, true, 44)
	case WDC12:
		return RMAT(17, 18, true, 45)
	default:
		panic("gen: unknown preset " + string(p))
	}
}

// BuildSmall generates a reduced version of the preset for unit tests.
//kimbap:deterministic
func BuildSmall(p Preset) *graph.Graph {
	switch p {
	case RoadEurope:
		return Grid(24, 24, true, 42)
	case Friendster:
		return RMAT(9, 8, true, 43)
	case Clueweb12:
		return RMAT(10, 8, true, 44)
	case WDC12:
		return RMAT(10, 10, true, 45)
	default:
		panic("gen: unknown preset " + string(p))
	}
}

// ApproxDiameter estimates a graph's diameter with a double-sweep BFS:
// BFS from node 0, then BFS from the farthest node found. This lower bound
// is exact on trees and accurate enough to classify graphs as high- or
// low-diameter.
func ApproxDiameter(g *graph.Graph) int {
	if g.NumNodes() == 0 {
		return 0
	}
	far, _ := bfsFarthest(g, 0)
	_, d := bfsFarthest(g, far)
	return d
}

func bfsFarthest(g *graph.Graph, start graph.NodeID) (graph.NodeID, int) {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = math.MaxInt
	}
	dist[start] = 0
	queue := []graph.NodeID{start}
	farNode, farDist := start, 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == math.MaxInt {
				dist[v] = dist[u] + 1
				if dist[v] > farDist {
					farDist, farNode = dist[v], v
				}
				queue = append(queue, v)
			}
		}
	}
	return farNode, farDist
}

// Load resolves a graph specification: a preset name ("friendster"), a
// reduced preset ("small:friendster"), or a path to an edge-list file.
func Load(spec string) (*graph.Graph, error) {
	if small, ok := strings.CutPrefix(spec, "small:"); ok {
		for _, p := range Presets {
			if small == string(p) {
				return BuildSmall(Preset(small)), nil
			}
		}
		return nil, fmt.Errorf("gen: unknown preset %q", small)
	}
	for _, p := range Presets {
		if spec == string(p) {
			return Build(p), nil
		}
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, fmt.Errorf("gen: %q is not a preset and not a readable file: %w", spec, err)
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}
