package gen

import (
	"fmt"
	"reflect"
	"testing"

	"kimbap/internal/graph"
)

// The generators draw every candidate edge from its own counter-based PRNG
// stream, so output is a pure function of (parameters, seed): these tests
// pin bit-identity across worker counts, the property the parallel build
// and partition equivalence tests inherit when they share one instance.

func requireIdenticalGraphs(t *testing.T, label string, want, got *graph.Graph) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("%s: shape differs: %d/%d nodes, %d/%d edges",
			label, want.NumNodes(), got.NumNodes(), want.NumEdges(), got.NumEdges())
	}
	for n := 0; n < want.NumNodes(); n++ {
		v := graph.NodeID(n)
		if !reflect.DeepEqual(want.Neighbors(v), got.Neighbors(v)) {
			t.Fatalf("%s: node %d neighbors differ", label, n)
		}
		if !reflect.DeepEqual(want.EdgeWeights(v), got.EdgeWeights(v)) {
			t.Fatalf("%s: node %d weights differ", label, n)
		}
	}
}

func TestGeneratorsBitIdenticalAcrossWorkers(t *testing.T) {
	gens := map[string]func() *graph.Graph{
		"grid":        func() *graph.Graph { return Grid(13, 17, true, 5) },
		"rmat":        func() *graph.Graph { return RMAT(9, 6, true, 6) },
		"erdosrenyi":  func() *graph.Graph { return ErdosRenyi(300, 1500, true, 7) },
		"chain":       func() *graph.Graph { return Chain(64, true, 8) },
		"communities": func() *graph.Graph { return Communities(4, 40, 5, 2, true, 9) },
	}
	for name, mk := range gens {
		prev := SetWorkers(1)
		want := mk()
		for _, workers := range []int{2, 4, 8} {
			SetWorkers(workers)
			requireIdenticalGraphs(t, fmt.Sprintf("%s/workers=%d", name, workers), want, mk())
		}
		SetWorkers(prev)
	}
}

func TestPresetsBitIdenticalAcrossWorkers(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	for _, p := range Presets {
		SetWorkers(1)
		want := BuildSmall(p)
		SetWorkers(3)
		requireIdenticalGraphs(t, string(p), want, BuildSmall(p))
	}
}
