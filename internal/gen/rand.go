package gen

import (
	"kimbap/internal/graph"
	"kimbap/internal/par"
)

// Counter-based pseudo-randomness for parallel generation. A sequential
// PRNG makes edge i depend on all draws before it, serializing the
// generator; instead every candidate edge gets its own splitmix64 stream
// keyed by (seed, candidate index). A worker can generate any chunk of the
// candidate space independently, and the resulting graph is a pure function
// of (parameters, seed) — bit-identical at every worker count.

// genWorkers is the worker count the generators pass to par (0 = all
// cores). Tests force specific counts to check bit-identity across them.
var genWorkers int

// SetWorkers fixes the generator worker count (0 = all cores) and returns
// the previous setting. Generated graphs are identical at every setting;
// tests use this to prove it.
func SetWorkers(w int) (prev int) {
	prev, genWorkers = genWorkers, w
	return prev
}

// splitmix64 is the SplitMix64 finalizer: a bijective mixer whose output
// over sequential inputs passes BigCrush.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// edgeRand is the per-candidate stream: state seeded from (seed, counter),
// advanced by the golden-ratio increment and finalized per draw.
type edgeRand struct{ s uint64 }

func newEdgeRand(seed, counter int64) edgeRand {
	return edgeRand{s: splitmix64(uint64(seed)) ^ splitmix64(uint64(counter)^0xd1b54a32d192ed03)}
}

func (r *edgeRand) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return splitmix64(r.s)
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (r *edgeRand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). The modulo bias is below 2^-32
// for every n the generators use.
func (r *edgeRand) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// fillColumns materializes the surviving candidates of cand(0..candidates)
// into exact-size edge columns, in candidate order. cand must be a pure
// function of its index (its edgeRand is the only randomness source);
// pass one counts each worker's static chunk's survivors, an exclusive
// scan gives the chunk write starts, and pass two regenerates and scatters
// — cheaper than buffering candidates, and trivially deterministic.
func fillColumns(candidates int, weighted bool,
	cand func(c int) (src, dst graph.NodeID, w float64, ok bool)) (srcs, dsts []graph.NodeID, ws []float64) {

	workers := par.Resolve(genWorkers)
	if workers > candidates {
		workers = candidates
	}
	if candidates == 0 {
		return nil, nil, nil
	}
	counts := make([]int64, workers)
	par.Do(workers, func(wk int) {
		lo, hi := par.Range(wk, workers, candidates)
		var c int64
		for i := lo; i < hi; i++ {
			if _, _, _, ok := cand(i); ok {
				c++
			}
		}
		counts[wk] = c
	})
	var total int64
	for wk := range counts {
		c := counts[wk]
		counts[wk] = total
		total += c
	}
	srcs = make([]graph.NodeID, total)
	dsts = make([]graph.NodeID, total)
	if weighted {
		ws = make([]float64, total)
	}
	par.Do(workers, func(wk int) {
		at := counts[wk]
		lo, hi := par.Range(wk, workers, candidates)
		for i := lo; i < hi; i++ {
			s, d, w, ok := cand(i)
			if !ok {
				continue
			}
			srcs[at], dsts[at] = s, d
			if weighted {
				ws[at] = w
			}
			at++
		}
	})
	return srcs, dsts, ws
}

// builderFromCandidates wraps fillColumns in a Builder that inherits the
// generator worker count.
func builderFromCandidates(numNodes, candidates int, weighted bool,
	cand func(c int) (src, dst graph.NodeID, w float64, ok bool)) *graph.Builder {

	srcs, dsts, ws := fillColumns(candidates, weighted, cand)
	return graph.NewBuilderFromArrays(numNodes, srcs, dsts, ws).SetWorkers(genWorkers)
}
