package gen

import (
	"os"
	"testing"

	"kimbap/internal/graph"
)

func TestGridStructure(t *testing.T) {
	g := Grid(4, 5, false, 1)
	if g.NumNodes() != 20 {
		t.Fatalf("NumNodes = %d, want 20", g.NumNodes())
	}
	// 4x5 grid: horizontal edges 4*4=16, vertical 3*5=15, doubled = 62.
	if g.NumEdges() != 62 {
		t.Fatalf("NumEdges = %d, want 62", g.NumEdges())
	}
	if g.MaxDegree() > 4 {
		t.Fatalf("grid max degree = %d, want <= 4", g.MaxDegree())
	}
	labels := graph.ReferenceComponents(g)
	if graph.NumComponents(labels) != 1 {
		t.Fatal("grid must be connected")
	}
}

func TestGridDeterministic(t *testing.T) {
	a := Grid(6, 6, true, 7)
	b := Grid(6, 6, true, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different grids")
	}
	for n := 0; n < a.NumNodes(); n++ {
		wa, wb := a.EdgeWeights(graph.NodeID(n)), b.EdgeWeights(graph.NodeID(n))
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
}

func TestGridHighDiameter(t *testing.T) {
	g := Grid(20, 20, false, 1)
	if d := ApproxDiameter(g); d < 30 {
		t.Fatalf("20x20 grid diameter estimate = %d, want >= 30", d)
	}
}

func TestRMATPowerLaw(t *testing.T) {
	g := RMAT(10, 8, false, 5)
	if g.NumNodes() != 1024 {
		t.Fatalf("NumNodes = %d, want 1024", g.NumNodes())
	}
	stats := g.ComputeStats()
	// Power law: max degree far exceeds average degree.
	if float64(stats.MaxDegree) < 8*stats.AvgDegree {
		t.Fatalf("max degree %d not skewed vs avg %.1f", stats.MaxDegree, stats.AvgDegree)
	}
	// Low diameter compared to a grid of similar size.
	if d := ApproxDiameter(g); d > 15 {
		t.Fatalf("RMAT diameter estimate = %d, want small", d)
	}
}

func TestRMATSymmetric(t *testing.T) {
	g := RMAT(8, 4, false, 9)
	for n := 0; n < g.NumNodes(); n++ {
		for _, v := range g.Neighbors(graph.NodeID(n)) {
			if !g.HasEdge(v, graph.NodeID(n)) {
				t.Fatalf("edge %d->%d has no reverse", n, v)
			}
		}
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, b := RMAT(9, 4, true, 3), RMAT(9, 4, true, 3)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different RMAT graphs")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 400, false, 2)
	if g.NumNodes() != 100 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 800 {
		t.Fatalf("NumEdges = %d out of plausible range", g.NumEdges())
	}
}

func TestChain(t *testing.T) {
	g := Chain(50, false, 1)
	if g.NumEdges() != 98 {
		t.Fatalf("chain edges = %d, want 98", g.NumEdges())
	}
	if d := ApproxDiameter(g); d != 49 {
		t.Fatalf("chain diameter = %d, want 49", d)
	}
}

func TestStar(t *testing.T) {
	g := Star(100)
	if g.Degree(0) != 99 {
		t.Fatalf("hub degree = %d, want 99", g.Degree(0))
	}
	if g.MaxDegree() != 99 {
		t.Fatalf("max degree = %d", g.MaxDegree())
	}
}

func TestCommunitiesQuality(t *testing.T) {
	g := Communities(4, 50, 6, 1, false, 11)
	if g.NumNodes() != 200 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	truth := make([]graph.NodeID, 200)
	for i := range truth {
		truth[i] = graph.NodeID(i / 50)
	}
	q := graph.Modularity(g, truth)
	if q < 0.4 {
		t.Fatalf("planted partition modularity = %.3f, want > 0.4", q)
	}
}

func TestPresets(t *testing.T) {
	for _, p := range Presets {
		g := BuildSmall(p)
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Errorf("preset %s produced empty graph", p)
		}
		if !g.Weighted() {
			t.Errorf("preset %s should be weighted", p)
		}
	}
}

func TestPresetGraphClasses(t *testing.T) {
	road := BuildSmall(RoadEurope)
	social := BuildSmall(Friendster)
	if road.MaxDegree() > 4 {
		t.Errorf("road analogue max degree %d, want <= 4", road.MaxDegree())
	}
	rs, ss := road.ComputeStats(), social.ComputeStats()
	if float64(ss.MaxDegree)/ss.AvgDegree < float64(rs.MaxDegree)/rs.AvgDegree {
		t.Error("social analogue should be more degree-skewed than road")
	}
	if ApproxDiameter(road) <= ApproxDiameter(social) {
		t.Error("road analogue should have larger diameter than social")
	}
}

func TestApproxDiameterEmpty(t *testing.T) {
	var g graph.Graph
	if d := ApproxDiameter(&g); d != 0 {
		t.Fatalf("empty diameter = %d", d)
	}
}

func TestUnknownPresetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown preset")
		}
	}()
	Build(Preset("nope"))
}

func TestLoadSpecs(t *testing.T) {
	g, err := Load("small:friendster")
	if err != nil || g.NumNodes() == 0 {
		t.Fatalf("small preset: %v", err)
	}
	if _, err := Load("small:nope"); err == nil {
		t.Fatal("unknown small preset accepted")
	}
	if _, err := Load("/definitely/not/a/file"); err == nil {
		t.Fatal("missing file accepted")
	}
	// Round-trip through an edge-list file.
	path := t.TempDir() + "/g.el"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	small := Grid(4, 4, false, 1)
	if err := graph.WriteEdgeList(f, small); err != nil {
		t.Fatal(err)
	}
	f.Close()
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != small.NumNodes() || loaded.NumEdges() != small.NumEdges() {
		t.Fatal("file round trip mismatch")
	}
}
