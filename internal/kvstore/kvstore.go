// Package kvstore is a Memcached-like distributed in-memory key-value
// store used as the baseline backend for the paper's MC runtime variant
// (§6.4). Keys are strings (one of the overheads the paper attributes to
// Memcached), values are opaque byte slices with a CAS version, and keys
// are distributed across servers by modulo hashing with no awareness of
// graph partitioning.
//
// Reductions are implemented the way the paper describes for Memcached:
// fetch the canonical value, combine locally, and attempt a CAS, retrying
// until it succeeds. The store counts operations, transferred bytes, and
// CAS retries so experiments can attribute MC's slowdown.
//
// Substitution note: the real Memcached deployment runs server processes
// reached over sockets; here servers are in-process shards reached through
// synchronized method calls. Contention (CAS retries under concurrent
// reducers) and per-operation key/metadata overheads — the effects the
// ablation measures — are preserved.
package kvstore

import (
	"bytes"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

const shardsPerServer = 16

type entry struct {
	value []byte
	cas   uint64
}

type shard struct {
	mu   sync.Mutex
	data map[string]entry
}

// Server is one store node: a sharded concurrent map.
type Server struct {
	shards [shardsPerServer]shard
}

// NewServer creates an empty server.
func NewServer() *Server {
	s := &Server{}
	for i := range s.shards {
		s.shards[i].data = make(map[string]entry)
	}
	return s
}

func (s *Server) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &s.shards[h.Sum32()%shardsPerServer]
}

// Value is the result of a read: the bytes, the CAS token to use for
// conditional writes, and whether the key existed.
type Value struct {
	Data []byte
	CAS  uint64
	OK   bool
}

func (s *Server) get(key string) Value {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.data[key]
	if !ok {
		return Value{}
	}
	return Value{Data: e.value, CAS: e.cas, OK: true}
}

func (s *Server) set(key string, value []byte) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.data[key]
	sh.data[key] = entry{value: value, cas: e.cas + 1}
}

// add stores value only if the key is absent (Memcached's ADD).
func (s *Server) add(key string, value []byte) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.data[key]; ok {
		return false
	}
	sh.data[key] = entry{value: value, cas: 1}
	return true
}

// cas stores value only if the entry's version still matches token.
func (s *Server) cas(key string, value []byte, token uint64) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.data[key]
	if !ok || e.cas != token {
		return false
	}
	sh.data[key] = entry{value: value, cas: token + 1}
	return true
}

// Stats counts client-side operations for communication accounting.
type Stats struct {
	Gets       atomic.Int64
	Sets       atomic.Int64
	CASAttempt atomic.Int64
	CASRetries atomic.Int64
	Bytes      atomic.Int64
}

// Cluster is a set of servers plus client-side routing state. Clients on
// all hosts share the cluster object; every operation routes to the server
// chosen by modulo-hashing the key.
type Cluster struct {
	servers []*Server
	// Stats are per client host, indexed by rank.
	stats []Stats
}

// NewCluster creates numServers empty servers with per-host client stats
// for numHosts hosts (usually equal, as in the paper's one server + one
// client per host setup).
func NewCluster(numServers, numHosts int) *Cluster {
	c := &Cluster{servers: make([]*Server, numServers), stats: make([]Stats, numHosts)}
	for i := range c.servers {
		c.servers[i] = NewServer()
	}
	return c
}

// ServerFor returns the index of the server owning key.
func (c *Cluster) ServerFor(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(len(c.servers)))
}

// Stats returns the operation counters for a client host.
func (c *Cluster) Stats(host int) *Stats { return &c.stats[host] }

// Get fetches a key on behalf of client host.
func (c *Cluster) Get(host int, key string) Value {
	st := &c.stats[host]
	st.Gets.Add(1)
	st.Bytes.Add(int64(len(key)))
	v := c.servers[c.ServerFor(key)].get(key)
	st.Bytes.Add(int64(len(v.Data)))
	return v
}

// MGet fetches many keys (Memcached's batched get). The result is parallel
// to keys.
func (c *Cluster) MGet(host int, keys []string) []Value {
	out := make([]Value, len(keys))
	for i, k := range keys {
		out[i] = c.Get(host, k)
	}
	return out
}

// Set unconditionally stores a value.
func (c *Cluster) Set(host int, key string, value []byte) {
	st := &c.stats[host]
	st.Sets.Add(1)
	st.Bytes.Add(int64(len(key) + len(value)))
	c.servers[c.ServerFor(key)].set(key, value)
}

// Add stores a value only if the key is absent and reports success.
func (c *Cluster) Add(host int, key string, value []byte) bool {
	st := &c.stats[host]
	st.Sets.Add(1)
	st.Bytes.Add(int64(len(key) + len(value)))
	return c.servers[c.ServerFor(key)].add(key, value)
}

// CAS attempts a conditional store and reports success.
func (c *Cluster) CAS(host int, key string, value []byte, token uint64) bool {
	st := &c.stats[host]
	st.CASAttempt.Add(1)
	st.Bytes.Add(int64(len(key) + len(value)))
	return c.servers[c.ServerFor(key)].cas(key, value, token)
}

// Reduce implements the paper's Memcached reduction: fetch, combine with
// op, CAS, and retry until the CAS lands. A missing key is initialized via
// add-if-absent. It reports whether the stored value changed.
func (c *Cluster) Reduce(host int, key string, value []byte,
	op func(current, incoming []byte) []byte) (changed bool) {

	st := &c.stats[host]
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			st.CASRetries.Add(1)
		}
		cur := c.Get(host, key)
		if !cur.OK {
			if c.Add(host, key, value) {
				return true
			}
			continue // lost the race to another first writer; retry
		}
		merged := op(cur.Data, value)
		if bytes.Equal(merged, cur.Data) {
			return false
		}
		if c.CAS(host, key, merged, cur.CAS) {
			return true
		}
	}
}
