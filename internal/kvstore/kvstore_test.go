package kvstore

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetSetBasics(t *testing.T) {
	c := NewCluster(3, 1)
	if v := c.Get(0, "missing"); v.OK {
		t.Fatal("missing key reported present")
	}
	c.Set(0, "k", []byte("v1"))
	v := c.Get(0, "k")
	if !v.OK || string(v.Data) != "v1" {
		t.Fatalf("Get = %+v", v)
	}
	c.Set(0, "k", []byte("v2"))
	v2 := c.Get(0, "k")
	if string(v2.Data) != "v2" || v2.CAS <= v.CAS {
		t.Fatalf("overwrite did not bump CAS: %+v -> %+v", v, v2)
	}
}

func TestCASSemantics(t *testing.T) {
	c := NewCluster(2, 1)
	c.Set(0, "k", []byte("a"))
	v := c.Get(0, "k")
	if !c.CAS(0, "k", []byte("b"), v.CAS) {
		t.Fatal("CAS with fresh token failed")
	}
	if c.CAS(0, "k", []byte("c"), v.CAS) {
		t.Fatal("CAS with stale token succeeded")
	}
	if got := c.Get(0, "k"); string(got.Data) != "b" {
		t.Fatalf("value = %q, want b", got.Data)
	}
	if c.CAS(0, "absent", []byte("x"), 0) {
		t.Fatal("CAS on absent key succeeded")
	}
}

func TestAddSemantics(t *testing.T) {
	c := NewCluster(1, 1)
	if !c.Add(0, "k", []byte("first")) {
		t.Fatal("Add to absent key failed")
	}
	if c.Add(0, "k", []byte("second")) {
		t.Fatal("Add to present key succeeded")
	}
	if got := c.Get(0, "k"); string(got.Data) != "first" {
		t.Fatalf("value = %q", got.Data)
	}
}

func TestMGet(t *testing.T) {
	c := NewCluster(4, 1)
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		c.Set(0, keys[i], []byte{byte(i)})
	}
	vals := c.MGet(0, keys)
	for i, v := range vals {
		if !v.OK || v.Data[0] != byte(i) {
			t.Fatalf("MGet[%d] = %+v", i, v)
		}
	}
}

func TestServerForStable(t *testing.T) {
	c := NewCluster(5, 1)
	for _, k := range []string{"a", "b", "node:12345"} {
		s1, s2 := c.ServerFor(k), c.ServerFor(k)
		if s1 != s2 || s1 < 0 || s1 >= 5 {
			t.Fatalf("ServerFor(%q) unstable or out of range: %d %d", k, s1, s2)
		}
	}
}

func sumOp(cur, in []byte) []byte {
	a := binary.LittleEndian.Uint64(cur)
	b := binary.LittleEndian.Uint64(in)
	return binary.LittleEndian.AppendUint64(nil, a+b)
}

func TestReduceConcurrentSum(t *testing.T) {
	// The MC ablation's central behaviour: many concurrent reducers on one
	// hot key must serialize through CAS retries yet lose no updates.
	c := NewCluster(2, 8)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	one := binary.LittleEndian.AppendUint64(nil, 1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(host int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Reduce(host, "hot", one, sumOp)
			}
		}(w)
	}
	wg.Wait()
	v := c.Get(0, "hot")
	got := binary.LittleEndian.Uint64(v.Data)
	if got != workers*perWorker {
		t.Fatalf("lost updates: sum = %d, want %d", got, workers*perWorker)
	}
	var retries int64
	for h := 0; h < 8; h++ {
		retries += c.Stats(h).CASRetries.Load()
	}
	if retries == 0 {
		t.Log("no CAS retries observed (low contention run); not failing")
	}
}

func TestReduceOnAbsentKeyInitializes(t *testing.T) {
	c := NewCluster(1, 1)
	one := binary.LittleEndian.AppendUint64(nil, 7)
	c.Reduce(0, "fresh", one, sumOp)
	if got := binary.LittleEndian.Uint64(c.Get(0, "fresh").Data); got != 7 {
		t.Fatalf("fresh reduce = %d, want 7", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := NewCluster(1, 2)
	c.Set(0, "k", []byte("abc"))
	c.Get(1, "k")
	if c.Stats(0).Sets.Load() != 1 {
		t.Fatal("set not counted on host 0")
	}
	if c.Stats(1).Gets.Load() != 1 {
		t.Fatal("get not counted on host 1")
	}
	if c.Stats(0).Bytes.Load() == 0 || c.Stats(1).Bytes.Load() == 0 {
		t.Fatal("bytes not counted")
	}
}

// Property: set-then-get returns the stored bytes for arbitrary keys.
func TestQuickSetGet(t *testing.T) {
	c := NewCluster(3, 1)
	f := func(key string, val []byte) bool {
		c.Set(0, key, val)
		got := c.Get(0, key)
		return got.OK && string(got.Data) == string(val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	// Gets, Sets, and CAS loops from many goroutines on overlapping keys
	// must never corrupt values (each value always equals one writer's).
	c := NewCluster(3, 8)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(host int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("k%d", i%7)
				switch i % 3 {
				case 0:
					c.Set(host, key, []byte{byte(host)})
				case 1:
					if v := c.Get(host, key); v.OK && len(v.Data) != 1 && len(v.Data) != 8 {
						t.Errorf("corrupt value length %d", len(v.Data))
					}
				case 2:
					v := c.Get(host, key)
					if v.OK {
						c.CAS(host, key, []byte{byte(host)}, v.CAS)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestMGetMissingKeys(t *testing.T) {
	c := NewCluster(2, 1)
	c.Set(0, "present", []byte("x"))
	vals := c.MGet(0, []string{"present", "absent"})
	if !vals[0].OK || vals[1].OK {
		t.Fatalf("MGet presence flags wrong: %+v", vals)
	}
}
