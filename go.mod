module kimbap

go 1.23
