# Kimbap build/verify targets. `make ci` is the full tier-1 gate.

GO ?= go

.PHONY: all build test lint race ci bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the standard vet suite plus Kimbap's own analyzers
# (DESIGN.md §7 "Checked invariants"). kimbapvet must run from the module
# root: it resolves packages with `go list` and type-checks from source.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/kimbapvet ./...

# race covers the concurrency-heavy packages: the property maps (CAS
# handle included), the runtime's worker pool, bitsets, and async drain
# scheduler, the transports, the parallel ingestion pipeline (par pool,
# Chase-Lev deques, counting-sort build, partitioner, generators), the
# kvstore application harness, and the full algorithms package — its
# equivalence matrices hammer the async scheduler's stealing/CAS paths
# and the pull rounds' plain-store master scans across host and thread
# counts, which is exactly where a direction bug would race.
race:
	$(GO) test -race ./internal/npm/... ./internal/runtime/... ./internal/comm/... \
		./internal/par/... ./internal/graph/... ./internal/partition/... ./internal/gen/... \
		./internal/kvstore/...
	$(GO) test -race ./internal/algorithms

ci: build test lint race

# bench regenerates BENCH_kimbap.json, the repo's perf-trajectory record.
# The previous file's wall times are carried into prev_ns_per_op, so the
# committed file always shows before/after for the sync-path suite.
bench:
	$(GO) run ./cmd/kimbap-bench -exp perf -scale full -reps 3 -json BENCH_kimbap.json
