# Kimbap build/verify targets. `make ci` is the full tier-1 gate.

GO ?= go

.PHONY: all build test lint race ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the standard vet suite plus Kimbap's own analyzers
# (DESIGN.md §7 "Checked invariants"). kimbapvet must run from the module
# root: it resolves packages with `go list` and type-checks from source.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/kimbapvet ./...

# race covers the concurrency-heavy packages: the property maps, the
# runtime's worker pool and bitsets, and the transports.
race:
	$(GO) test -race ./internal/npm/... ./internal/runtime/... ./internal/comm/...

ci: build test lint race
