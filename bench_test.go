// Benchmarks regenerating the paper's evaluation (one per table/figure).
// Each benchmark runs the corresponding experiment's core workload at
// small scale per iteration; the full tables come from cmd/kimbap-bench.
package kimbap_test

import (
	"io"
	"testing"

	"kimbap/internal/algorithms"
	"kimbap/internal/baselines/galois"
	"kimbap/internal/baselines/gluon"
	"kimbap/internal/bench"
	"kimbap/internal/compiler"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/npm"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

var benchCfg = bench.Config{Scale: bench.Small, Threads: 4, Reps: 1}

// road and social are the two medium-graph classes every figure sweeps.
var (
	roadG   = gen.BuildSmall(gen.RoadEurope)
	socialG = gen.BuildSmall(gen.Friendster)
	webG    = gen.BuildSmall(gen.Clueweb12)
)

// BenchmarkTable1Stats measures graph generation and the Table 1
// statistics pass.
func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := gen.Grid(64, 64, true, int64(i))
		s := g.ComputeStats()
		if s.Nodes == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkTable2Registry renders the operator-class table.
func BenchmarkTable2Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchCfg.Table2(io.Discard)
	}
}

// Table 3: Galois (1 host) vs Kimbap. One benchmark per side of the
// comparison on the workload where the paper's contrast is sharpest
// (CC-SV on the high-diameter road graph).
func BenchmarkTable3GaloisCCSV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		galois.CCSV(roadG, 4)
	}
}

func BenchmarkTable3KimbapCCSV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCC(b, roadG, 1, algorithms.Config{}, algorithms.CCSV)
	}
}

// Figure 9 panels (medium graphs, strong scaling): one benchmark per
// application at the sweep's 2-host point.
func BenchmarkFig9aLouvain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := algorithms.Louvain(socialG, runtime.Config{NumHosts: 2, ThreadsPerHost: 4},
			algorithms.Config{}, algorithms.CDOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9aVite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := algorithms.Louvain(socialG, runtime.Config{NumHosts: 2, ThreadsPerHost: 4},
			algorithms.Config{Variant: npm.Vite},
			algorithms.CDOptions{EarlyTermination: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9bLeiden(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := algorithms.Leiden(socialG, runtime.Config{NumHosts: 2, ThreadsPerHost: 4},
			algorithms.Config{}, algorithms.CDOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9cCCSV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCC(b, roadG, 2, algorithms.Config{}, algorithms.CCSV)
	}
}

func BenchmarkFig9cCCLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCC(b, roadG, 2, algorithms.Config{}, algorithms.CCLP)
	}
}

func BenchmarkFig9cCCSCLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCC(b, roadG, 2, algorithms.Config{}, algorithms.CCSCLP)
	}
}

func BenchmarkFig9cGluonLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := gluon.CCLP(roadG, runtime.Config{
			NumHosts: 2, ThreadsPerHost: 4, Policy: partition.CVC,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9dMSF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := make([]graph.NodeID, roadG.NumNodes())
		runSPMD(b, roadG, 2, partition.CVC, func(h *runtime.Host) {
			algorithms.MSF(h, algorithms.Config{}, out)
		})
	}
}

func BenchmarkFig9eMIS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := make([]bool, socialG.NumNodes())
		runSPMD(b, socialG, 2, partition.CVC, func(h *runtime.Host) {
			algorithms.MIS(h, algorithms.Config{}, out)
		})
	}
}

// Figure 10 (large graphs): CC-SV on the clueweb12 analogue at 4 hosts.
func BenchmarkFig10CCSVLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCC(b, webG, 4, algorithms.Config{}, algorithms.CCSV)
	}
}

func BenchmarkFig10LouvainLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := algorithms.Louvain(webG, runtime.Config{NumHosts: 4, ThreadsPerHost: 4},
			algorithms.Config{}, algorithms.CDOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 11 (runtime-variant ablation): CC-SV under each node-property
// map variant at 2 hosts on the road graph, where the paper reports the
// largest CF gains.
func BenchmarkFig11FullVariant(b *testing.B)  { benchVariant(b, npm.Full) }
func BenchmarkFig11SGRCFVariant(b *testing.B) { benchVariant(b, npm.SGRCF) }
func BenchmarkFig11SGROnly(b *testing.B)      { benchVariant(b, npm.SGROnly) }
func BenchmarkFig11Vite(b *testing.B)         { benchVariant(b, npm.Vite) }
func BenchmarkFig11Memcached(b *testing.B)    { benchVariant(b, npm.MC) }

func benchVariant(b *testing.B, v npm.Variant) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := algorithms.Config{Variant: v}
		if v == npm.MC {
			cfg.Store = kvstore.NewCluster(2, 2)
		}
		runCC(b, roadG, 2, cfg, algorithms.CCSV)
	}
}

// Figure 12 (compiler optimizations): compiled CC-LP with and without the
// §5.2 optimizations.
func BenchmarkFig12CCLPOpt(b *testing.B)   { benchCompiled(b, true) }
func BenchmarkFig12CCLPNoOpt(b *testing.B) { benchCompiled(b, false) }

func benchCompiled(b *testing.B, optimize bool) {
	b.Helper()
	plan, err := compiler.Compile(compiler.CCLPProgram(), compiler.Options{Optimize: optimize})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSPMD(b, roadG, 2, partition.OEC, func(h *runtime.Host) {
			compiler.NewExec(h, plan, compiler.ExecConfig{}).Run()
		})
	}
}

// §4.2 read-locality measurement.
func BenchmarkReadLocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchCfg.ReadLocality(io.Discard)
	}
}

// --- helpers ---

func runCC(b *testing.B, g *graph.Graph, hosts int, cfg algorithms.Config,
	algo func(h *runtime.Host, cfg algorithms.Config, out []graph.NodeID) algorithms.CCStats) {
	b.Helper()
	out := make([]graph.NodeID, g.NumNodes())
	runSPMD(b, g, hosts, partition.CVC, func(h *runtime.Host) { algo(h, cfg, out) })
}

func runSPMD(b *testing.B, g *graph.Graph, hosts int, pol partition.Policy,
	prog func(h *runtime.Host)) {
	b.Helper()
	c, err := runtime.NewCluster(g, runtime.Config{
		NumHosts: hosts, ThreadsPerHost: 4, Policy: pol,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.Run(prog)
}
