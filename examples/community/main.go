// Community detection: the paper's motivating application. Louvain and
// Leiden are trans-vertex algorithms — each node reads and reduces the
// aggregate properties of dynamically chosen communities, stored on
// representative nodes — so they cannot be written in adjacent-vertex
// frameworks like Gemini or Gluon.
//
// This example plants a known community structure, recovers it with both
// algorithms on a simulated cluster, and compares their quality against
// each other and the Vite baseline.
//
//	go run ./examples/community
package main

import (
	"fmt"
	"log"

	"kimbap/internal/algorithms"
	"kimbap/internal/baselines/vite"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/runtime"
)

func main() {
	// 12 planted communities of 80 nodes with sparse inter-community
	// edges: ground-truth modularity is high and recoverable.
	g := gen.Communities(12, 80, 6, 1, true, 99)
	truth := make([]graph.NodeID, g.NumNodes())
	for i := range truth {
		truth[i] = graph.NodeID(i / 80)
	}
	fmt.Printf("input graph: %s\n", g.ComputeStats())
	fmt.Printf("planted-partition modularity: %.4f\n", graph.Modularity(g, truth))

	ccfg := runtime.Config{NumHosts: 4, ThreadsPerHost: 4}

	lv, err := algorithms.Louvain(g, ccfg, algorithms.Config{}, algorithms.CDOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kimbap Louvain:  Q=%.4f  levels=%d rounds=%d  compute=%v comm=%v\n",
		lv.Modularity, lv.Levels, lv.Rounds, lv.Compute, lv.Comm)

	ld, err := algorithms.Leiden(g, ccfg, algorithms.Config{}, algorithms.CDOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kimbap Leiden:   Q=%.4f  levels=%d rounds=%d  compute=%v comm=%v\n",
		ld.Modularity, ld.Levels, ld.Rounds, ld.Compute, ld.Comm)

	vt, err := vite.Louvain(g, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Vite baseline:   Q=%.4f  levels=%d rounds=%d\n",
		vt.Modularity, vt.Levels, vt.Rounds)

	fmt.Printf("\ncommunities found: LV=%d LD=%d (planted: 12)\n",
		distinct(lv.Assignment), distinct(ld.Assignment))
}

func distinct(a []graph.NodeID) int {
	seen := map[graph.NodeID]struct{}{}
	for _, v := range a {
		seen[v] = struct{}{}
	}
	return len(seen)
}
