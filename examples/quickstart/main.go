// Quickstart: the paper's running example (Figure 4) end to end.
//
// It builds a small social-network-like graph, spins up a simulated
// 4-host cluster, runs Shiloach-Vishkin connected components — a
// trans-vertex algorithm that adjacent-vertex frameworks cannot express —
// and verifies the labeling against a sequential BFS.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kimbap/internal/algorithms"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

func main() {
	// A power-law graph: a few dozen components, some hub nodes.
	g := gen.RMAT(10, 4, false, 7)
	fmt.Printf("input graph: %s\n", g.ComputeStats())

	// Four simulated hosts, Cartesian vertex-cut partitioning (the policy
	// the paper uses for CC), four worker threads each.
	cluster, err := runtime.NewCluster(g, runtime.Config{
		NumHosts:       4,
		ThreadsPerHost: 4,
		Policy:         partition.CVC,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Run the algorithm SPMD: the same program executes on every host,
	// coordinating through node-property map collectives.
	labels := make([]graph.NodeID, g.NumNodes())
	stats := make([]algorithms.CCStats, 4)
	cluster.Run(func(h *runtime.Host) {
		stats[h.Rank] = algorithms.CCSV(h, algorithms.Config{}, labels)
	})

	fmt.Printf("CC-SV finished: %d hook rounds, %d shortcut rounds\n",
		stats[0].HookRounds, stats[0].ShortcutRounds)
	fmt.Printf("components found: %d\n", graph.NumComponents(labels))

	// Verify against the sequential reference.
	want := graph.ReferenceComponents(g)
	for i := range want {
		if labels[i] != want[i] {
			log.Fatalf("node %d labeled %d, expected %d", i, labels[i], want[i])
		}
	}
	fmt.Println("verified against sequential BFS reference: OK")

	msgs, bytes := cluster.CommStats()
	fmt.Printf("cluster traffic: %d messages, %.1f KB\n", msgs, float64(bytes)/1024)
}
