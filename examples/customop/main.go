// Custom operator: writing a new vertex program against the compiler IR
// and running it through the full compile-and-execute pipeline.
//
// The program computes, for every node, the maximum node ID reachable
// within two hops — a trans-vertex operator: the second hop reads the
// property of a dynamically computed node (the current best), which
// adjacent-vertex frameworks cannot express. The compiler splits the
// operator, inserts the required Request/RequestSync phases, and pins
// mirrors where the reads are adjacent (§5).
//
//	go run ./examples/customop
package main

import (
	"fmt"
	"log"

	"kimbap/internal/compiler"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

func main() {
	// The program: "best" starts as each node's own ID; each round every
	// node raises its best to (a) its neighbors' bests (adjacent) and (b)
	// the best of the node its current best names (trans-vertex pointer
	// chase). At quiescence best[n] is the maximum ID in n's component.
	prog := &compiler.Program{
		Name: "max-reach",
		Maps: []compiler.MapDecl{{Name: "best", Kind: compiler.MaxMap, InitToID: true}},
		Loops: []compiler.Loop{{
			Quiesce: "best",
			Body: []compiler.Stmt{
				compiler.Read{Dst: "mine", Map: "best", Key: compiler.Active{}},
				compiler.ForEdges{Body: []compiler.Stmt{
					compiler.Read{Dst: "theirs", Map: "best", Key: compiler.EdgeDst{}},
					compiler.If{
						Cond: compiler.Cond{Op: compiler.Gt, L: compiler.Var{Name: "theirs"}, R: compiler.Var{Name: "mine"}},
						Then: []compiler.Stmt{
							compiler.Reduce{Map: "best", Key: compiler.Active{}, Val: compiler.Var{Name: "theirs"}},
						},
					},
				}},
				// The pointer chase: read best[best[n]] — a trans-vertex
				// access the compiler must request.
				compiler.Read{Dst: "chased", Map: "best", Key: compiler.Var{Name: "mine"}},
				compiler.If{
					Cond: compiler.Cond{Op: compiler.Gt, L: compiler.Var{Name: "chased"}, R: compiler.Var{Name: "mine"}},
					Then: []compiler.Stmt{
						compiler.Reduce{Map: "best", Key: compiler.Active{}, Val: compiler.Var{Name: "chased"}},
					},
				},
			},
		}},
	}

	plan, err := compiler.Compile(prog, compiler.Options{Optimize: true})
	if err != nil {
		log.Fatal(err)
	}
	lp := plan.Loops[0]
	fmt.Printf("compiled %q: pinned maps=%v, request phases=%d, masters-only=%v\n",
		prog.Name, lp.PinMaps, len(lp.RequestOps), lp.MastersOnly)

	g := gen.RMAT(9, 4, false, 11)
	fmt.Printf("input graph: %s\n", g.ComputeStats())
	cluster, err := runtime.NewCluster(g, runtime.Config{
		NumHosts: 3, ThreadsPerHost: 4, Policy: partition.OEC,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	out := make([]graph.NodeID, g.NumNodes())
	cluster.Run(func(h *runtime.Host) {
		e := compiler.NewExec(h, plan, compiler.ExecConfig{})
		e.Run()
		m := e.Map("best")
		lo, hi := h.HP.MasterRangeGlobal()
		for n := lo; n < hi; n++ {
			m.Request(n)
		}
		m.RequestSync()
		for n := lo; n < hi; n++ {
			out[n] = m.Read(n)
		}
	})

	// Verify: best[n] must equal the max node ID in n's component.
	comps := graph.ReferenceComponents(g)
	maxIn := map[graph.NodeID]graph.NodeID{}
	for i, c := range comps {
		if graph.NodeID(i) > maxIn[c] {
			maxIn[c] = graph.NodeID(i)
		}
	}
	for i, c := range comps {
		if out[i] != maxIn[c] {
			log.Fatalf("node %d: best=%d, want %d", i, out[i], maxIn[c])
		}
	}
	fmt.Println("verified: every node found its component's maximum ID")
}
