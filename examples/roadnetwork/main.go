// Road-network analytics: the high-diameter case where trans-vertex
// algorithms shine. On a road network, label propagation needs roughly
// diameter-many rounds, while pointer-jumping algorithms (CC-SV, CC-SCLP)
// collapse long paths logarithmically — the paper's Figure 9c story. The
// example also computes a minimum spanning forest with Boruvka and checks
// it against Kruskal.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"kimbap/internal/algorithms"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

func main() {
	// A 60x60 weighted grid: diameter ~118, uniform degree <= 4.
	g := gen.Grid(60, 60, true, 5)
	fmt.Printf("road network: %s, diameter~%d\n", g.ComputeStats(), gen.ApproxDiameter(g))

	type ccFn func(*runtime.Host, algorithms.Config, []graph.NodeID) algorithms.CCStats
	run := func(name string, fn ccFn) {
		cluster, err := runtime.NewCluster(g, runtime.Config{
			NumHosts: 4, ThreadsPerHost: 4, Policy: partition.CVC,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		labels := make([]graph.NodeID, g.NumNodes())
		stats := make([]algorithms.CCStats, 4)
		start := time.Now()
		cluster.Run(func(h *runtime.Host) {
			stats[h.Rank] = fn(h, algorithms.Config{}, labels)
		})
		fmt.Printf("%-8s rounds: propagate=%-4d shortcut=%-4d  wall=%v\n",
			name, stats[0].HookRounds, stats[0].ShortcutRounds,
			time.Since(start).Round(time.Microsecond))
	}

	fmt.Println("\nconnected components, three algorithms:")
	run("CC-LP", algorithms.CCLP)     // adjacent-vertex: ~diameter rounds
	run("CC-SCLP", algorithms.CCSCLP) // shortcutting: far fewer
	run("CC-SV", algorithms.CCSV)     // Shiloach-Vishkin: logarithmic

	// Minimum spanning forest with Boruvka (trans-vertex only).
	cluster, err := runtime.NewCluster(g, runtime.Config{
		NumHosts: 4, ThreadsPerHost: 4, Policy: partition.CVC,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	comp := make([]graph.NodeID, g.NumNodes())
	stats := make([]algorithms.MSFStats, 4)
	cluster.Run(func(h *runtime.Host) {
		stats[h.Rank] = algorithms.MSF(h, algorithms.Config{}, comp)
	})
	want := graph.ReferenceMSFWeight(g)
	fmt.Printf("\nBoruvka MSF: weight=%.2f edges=%d rounds=%d\n",
		stats[0].TotalWeight, stats[0].ForestEdges, stats[0].Rounds)
	if math.Abs(stats[0].TotalWeight-want) > 1e-6*want {
		log.Fatalf("MSF weight mismatch: got %.4f, Kruskal says %.4f", stats[0].TotalWeight, want)
	}
	fmt.Printf("verified against Kruskal reference (%.2f): OK\n", want)
}
